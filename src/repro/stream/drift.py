"""Label-free drift detection between a live sketch and a served model.

A served :class:`~repro.serve.ClusterModel` is a frozen claim about where
the clusters are; the live :class:`~repro.stream.StreamSketch` keeps saying
where the mass actually is.  :class:`DriftMonitor` compares the two with the
same label-free criteria the tuning sweep uses (:mod:`repro.tune.scoring`),
entirely over occupied cells -- no points, no ground-truth labels:

* **noise-band mass shift** -- the fraction of the sketch mass that falls in
  cells the served model filters as noise.  At publish time this fraction is
  recorded as the baseline; a distribution shift (clusters moving out from
  under their cells, the noise floor rising) drags the live fraction away
  from it.
* **partition-stability drop** -- re-run the cheap grid-side pipeline
  (transform, threshold, components) on the live sketch coarsened to the
  serving resolution and compare the resulting partition of the sketch cells
  against the served model's partition, mass-weighted
  (:func:`~repro.tune.scoring.weighted_partition_nmi`).  While the
  distribution is stationary the fresh partition reproduces the served one
  and the agreement stays near 1; once the structure moves, it drops.

Both checks cost ``O(cells)`` plus one grid-side pipeline pass at the
serving resolution -- cheap enough to run every few batches on a live
stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.pipeline import run_grid_pipeline
from repro.core.transform import Workspace
from repro.grid.lookup import NOISE_LABEL, CellLabelIndex
from repro.grid.sparse_grid import SparseGrid
from repro.serve.model import ClusterModel
from repro.tune.scoring import weighted_partition_nmi
from repro.utils.validation import NotFittedError


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one drift check of a live sketch against a served model.

    Attributes
    ----------
    drifted:
        True when at least one criterion crossed its threshold.
    stability:
        Mass-weighted NMI between the served partition and a fresh pipeline
        partition of the live sketch at the serving resolution (1 = the
        served model still explains the stream perfectly).
    noise_fraction:
        Fraction of the live sketch mass falling in cells the served model
        labels as noise.
    noise_shift:
        ``|noise_fraction - baseline|`` where the baseline was recorded when
        the served model was published.
    n_seen:
        Raw samples the sketch had ingested at check time.
    reasons:
        Human-readable criterion violations (empty when not drifted).
    """

    drifted: bool
    stability: float
    noise_fraction: float
    noise_shift: float
    n_seen: int
    reasons: Tuple[str, ...] = ()


class DriftMonitor:
    """Flags when a served model no longer explains the live sketch.

    Parameters
    ----------
    min_stability:
        Drift is flagged when the mass-weighted partition agreement between
        the served model and a fresh pipeline run on the live sketch falls
        below this value.
    max_noise_shift:
        Drift is flagged when the live noise-band mass fraction moves more
        than this far from the fraction recorded at publish time.
    wavelet, threshold, threshold_method, connectivity, min_cluster_cells,
    angle_divisor, backend:
        Grid-side pipeline parameters for the fresh partition; use the same
        values the serving models are tuned with.  Sweep-axis specs are
        resolved against the served model at check time: a ``wavelet``
        sequence or ``threshold="tune"`` makes the fresh pass adopt the
        basis / level policy the served model's metadata records (falling
        back to the defaults when the artifact predates that provenance),
        so the drift score measures distribution shift rather than a
        configuration mismatch.

    Attributes
    ----------
    model_:
        The served model currently monitored (set by :meth:`rebase`).
    baseline_noise_fraction_:
        Noise-band mass fraction of the sketch at publish time.
    """

    def __init__(
        self,
        *,
        min_stability: float = 0.7,
        max_noise_shift: float = 0.15,
        wavelet: str = "bior2.2",
        threshold="hard",
        threshold_method: str = "auto",
        connectivity: str = "auto",
        min_cluster_cells: int = 3,
        angle_divisor: float = 3.0,
        backend="auto",
    ) -> None:
        if not 0.0 <= min_stability <= 1.0:
            raise ValueError(f"min_stability must be in [0, 1]; got {min_stability}.")
        if not 0.0 < max_noise_shift <= 1.0:
            raise ValueError(f"max_noise_shift must be in (0, 1]; got {max_noise_shift}.")
        self.min_stability = float(min_stability)
        self.max_noise_shift = float(max_noise_shift)
        if not (isinstance(threshold, str) and threshold == "tune"):
            from repro.wavelets.thresholding import LevelPolicy

            LevelPolicy.parse(threshold)  # fail fast on typos
        self._pipeline_params = dict(
            wavelet=wavelet,
            threshold=threshold,
            threshold_method=threshold_method,
            connectivity=connectivity,
            min_cluster_cells=min_cluster_cells,
            angle_divisor=angle_divisor,
            backend=backend,
        )
        self.model_: Optional[ClusterModel] = None
        self.baseline_noise_fraction_: Optional[float] = None
        # Scratch buffer reused by every fresh-partition pipeline pass.
        self._workspace = Workspace()

    def _fresh_params(self) -> dict:
        """Pipeline params for the fresh pass, sweep specs pinned to the model.

        A re-tuning controller hands this monitor the same widened axis
        specs it sweeps with (``threshold="tune"``, a wavelet sequence); the
        fresh partition must instead reproduce the *served* configuration,
        which the swapped model's metadata records.  Artifacts that predate
        the provenance keys fall back to the defaults.
        """
        params = dict(self._pipeline_params)
        metadata = self.model_.metadata if self.model_ is not None else {}
        threshold = params.get("threshold", "hard")
        if isinstance(threshold, str) and threshold == "tune":
            params["threshold"] = metadata.get("threshold_method") or "hard"
        wavelet = params.get("wavelet", "bior2.2")
        if isinstance(wavelet, (list, tuple)):
            params["wavelet"] = metadata.get("wavelet") or "bior2.2"
        return params

    # -- geometry ---------------------------------------------------------------

    def _serving_factors(self, sketch) -> np.ndarray:
        """Per-dimension downsampling from the sketch grid to the model grid."""
        sketch_shape = np.asarray(sketch.shape, dtype=np.int64)
        model_shape = np.asarray(self.model_.grid_shape, dtype=np.int64)
        if sketch_shape.shape != model_shape.shape:
            raise ValueError(
                f"served model is {len(model_shape)}-D but the sketch is "
                f"{len(sketch_shape)}-D."
            )
        factors = sketch_shape // model_shape
        if np.any(factors < 1) or np.any(factors * model_shape != sketch_shape):
            raise ValueError(
                f"served model resolution {tuple(model_shape)} does not nest in "
                f"the sketch resolution {tuple(sketch_shape)}; the model must be "
                "tuned from (a dyadic coarsening of) the sketch grid."
            )
        if not (
            np.allclose(sketch.lower, self.model_.lower)
            and np.allclose(sketch.upper, self.model_.upper)
        ):
            raise ValueError(
                "served model and sketch were quantized against different "
                "bounds; drift scores between them are meaningless."
            )
        return factors

    def _served_partition(
        self, sketch, factors: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        """Served label + mass per live sketch cell, and the noise fraction."""
        grid: SparseGrid = sketch.grid
        coords = grid.coords
        values = grid.values
        combined = factors * (2 ** self.model_.level)
        index = CellLabelIndex(self.model_.cell_coords, self.model_.cell_labels)
        served = index.lookup(coords // combined)
        total = float(values.sum())
        if total > 0:
            noise_fraction = float(values[served == NOISE_LABEL].sum()) / total
        else:
            noise_fraction = 1.0
        return served, coords, values, noise_fraction

    # -- public API -------------------------------------------------------------

    def rebase(self, model: ClusterModel, sketch) -> "DriftMonitor":
        """Adopt ``model`` as the served baseline for the given sketch state.

        Called at publish time (and after every re-tune): records the model
        and the sketch's current noise-band mass fraction under it, so later
        :meth:`assess` calls measure the *shift* since publication rather
        than the absolute level.
        """
        if not isinstance(model, ClusterModel):
            raise TypeError(
                f"can only monitor ClusterModel artifacts; got {type(model).__name__}."
            )
        self.model_ = model
        factors = self._serving_factors(sketch)
        _, _, _, noise_fraction = self._served_partition(sketch, factors)
        self.baseline_noise_fraction_ = noise_fraction
        return self

    def assess(self, sketch) -> DriftReport:
        """Score the live sketch against the served baseline.

        ``sketch`` is a :class:`~repro.stream.StreamSketch` or
        :class:`~repro.stream.SketchSnapshot`.  Requires :meth:`rebase`
        first.
        """
        if self.model_ is None or self.baseline_noise_fraction_ is None:
            raise NotFittedError(
                "DriftMonitor.assess called before rebase(); publish a served "
                "model first so there is a baseline to drift from."
            )
        factors = self._serving_factors(sketch)
        served, coords, values, noise_fraction = self._served_partition(sketch, factors)
        combined = factors * (2 ** self.model_.level)

        # Fresh partition of the same cells: what the pipeline says *now*
        # about the mass the sketch holds, at the serving resolution.
        coarse = sketch.grid.coarsen(factors)
        pipe = run_grid_pipeline(
            coarse,
            level=self.model_.level,
            workspace=self._workspace,
            **self._fresh_params(),
        )
        fresh = CellLabelIndex(pipe.cell_coords, pipe.cell_labels).lookup(
            coords // combined
        )
        stability = weighted_partition_nmi(served, fresh, values)

        noise_shift = abs(noise_fraction - self.baseline_noise_fraction_)
        reasons = []
        if stability < self.min_stability:
            reasons.append(
                f"partition stability {stability:.3f} fell below "
                f"{self.min_stability:.3f}"
            )
        if noise_shift > self.max_noise_shift:
            reasons.append(
                f"noise-band mass fraction shifted by {noise_shift:.3f} "
                f"(baseline {self.baseline_noise_fraction_:.3f}, "
                f"live {noise_fraction:.3f}, tolerance {self.max_noise_shift:.3f})"
            )
        return DriftReport(
            drifted=bool(reasons),
            stability=float(stability),
            noise_fraction=float(noise_fraction),
            noise_shift=float(noise_shift),
            n_seen=int(sketch.n_seen),
            reasons=tuple(reasons),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DriftMonitor(min_stability={self.min_stability}, "
            f"max_noise_shift={self.max_noise_shift}, "
            f"baseline={self.baseline_noise_fraction_})"
        )
