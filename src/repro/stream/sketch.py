"""The live stream sketch: quantization geometry + COO grid + counters.

Streaming AdaWave used to keep its sketch state (quantizer, grid, sample
counter) inline on the estimator.  :class:`StreamSketch` extracts it into a
free-standing object so the same machinery serves every online consumer --
the estimator's ``partial_fit``/``finalize``, sharded
:func:`repro.serve.parallel_ingest`, and the drift-aware
:class:`~repro.stream.controller.StreamController` -- without each of them
re-implementing bounds discipline, merge compatibility and consolidation.

A sketch is *frozen geometry plus mutable mass*: the bounds and interval
counts are fixed at construction (every batch must quantize against the same
grid, which is what makes the sketch associative and commutative), while the
occupied-cell densities accumulate.  Two sketches with identical geometry
merge into exactly the sketch the concatenated streams would have produced;
sketches with different geometry refuse loudly (see :meth:`StreamSketch.merge`)
because their cell coordinates do not describe the same regions of space.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Sequence, Tuple, Union

import numpy as np

from repro.grid.quantizer import GridQuantizer
from repro.grid.sparse_grid import SparseGrid
from repro.utils.validation import check_array, check_positive_int, column_or_row


def _format_bounds(lower: np.ndarray, upper: np.ndarray) -> str:
    fmt = lambda a: np.array2string(np.asarray(a, dtype=np.float64), precision=6)
    return f"lower={fmt(lower)}, upper={fmt(upper)}"


@dataclass(frozen=True)
class SketchSnapshot:
    """An immutable point-in-time copy of a :class:`StreamSketch`.

    Drift monitoring compares *successive* states of a live stream; a
    snapshot decouples that comparison from ongoing ingestion (the grid is a
    deep copy, so the sketch may keep mutating underneath).
    """

    grid: SparseGrid
    n_seen: int
    n_batches: int
    lower: np.ndarray
    upper: np.ndarray

    @property
    def shape(self) -> Tuple[int, ...]:
        """Interval counts of the sketch grid."""
        return self.grid.shape

    @property
    def ndim(self) -> int:
        """Dimensionality of the sketched feature space."""
        return self.grid.ndim

    def total_mass(self) -> float:
        """Sum of all stored densities (equals ``n_seen`` unless decayed)."""
        return self.grid.total_mass()


class StreamSketch:
    """Mergeable fine-resolution sketch of a point stream.

    Parameters
    ----------
    bounds:
        Explicit ``(lower, upper)`` feature-space bounds.  Mandatory: every
        batch of a stream must quantize against the same grid, which
        data-derived bounds cannot guarantee.
    scale:
        Interval counts per dimension (an integer or one value per
        dimension).  For downstream dyadic re-tuning
        (:func:`repro.tune.tune_pyramid`) this should be a power of two.
    n_features:
        Dimensionality of the stream.
    window:
        Optional sliding-window length in batches.  ``None`` (default)
        accumulates forever -- the exact cumulative sketch streaming AdaWave
        relies on.  An integer keeps only the most recent ``window``
        ingested batches at full weight and drops older ones *exactly* (each
        batch's sub-sketch is retained separately and the live grid is their
        merge), so the sketch tracks the recent stream -- the forgetting
        policy drift-aware re-tuning wants: no ghost mass from a superseded
        distribution, no loss of effective sample size.

    Attributes
    ----------
    n_seen:
        Raw number of samples ingested (never decayed, never windowed out).
    n_batches:
        Number of non-empty batches ingested or merged.
    """

    def __init__(
        self,
        bounds: Tuple[Sequence[float], Sequence[float]],
        scale: Union[int, Sequence[int]],
        n_features: int,
        *,
        window: Optional[int] = None,
    ) -> None:
        n_features = check_positive_int(n_features, name="n_features")
        if bounds is None:
            raise ValueError(
                "StreamSketch requires explicit bounds=(lower, upper): every "
                "batch must quantize against the same grid, which data-derived "
                "bounds cannot guarantee."
            )
        lower = column_or_row(bounds[0], n_features, name="bounds[0]")
        upper = column_or_row(bounds[1], n_features, name="bounds[1]")
        quantizer = GridQuantizer(scale=scale, bounds=(lower, upper))
        # fit() only needs samples inside the bounds to validate; the bounds
        # rows themselves are the canonical such samples.
        quantizer.fit(np.vstack([lower, upper]).astype(np.float64))
        self._quantizer = quantizer
        self._grid = SparseGrid(quantizer.shape_)
        self._window = (
            None if window is None else check_positive_int(window, name="window")
        )
        # Per-batch sub-sketches of the current window (windowed mode only);
        # _grid is their merge, rebuilt lazily when marked stale.
        self._window_grids: Deque[Tuple[SparseGrid, int]] = deque()
        self._grid_stale = False
        self.n_seen: int = 0
        self.n_batches: int = 0

    # -- geometry ---------------------------------------------------------------

    @property
    def quantizer(self) -> GridQuantizer:
        """The fitted quantizer (frozen geometry) every batch maps through."""
        return self._quantizer

    @property
    def grid(self) -> SparseGrid:
        """The live sparse grid (mutated in place by :meth:`ingest`).

        In windowed mode this is the merge of the retained batches,
        rebuilt lazily after the window slides.
        """
        if self._grid_stale:
            merged = SparseGrid(self._quantizer.shape_)
            for batch_grid, _ in self._window_grids:
                merged.merge(batch_grid)
            self._grid = merged
            self._grid_stale = False
        return self._grid

    @property
    def window(self) -> Optional[int]:
        """Sliding-window length in batches (``None`` = cumulative)."""
        return self._window

    @property
    def n_window(self) -> int:
        """Samples currently inside the window (equals :attr:`n_seen` when
        cumulative)."""
        if self._window is None:
            return self.n_seen
        return sum(count for _, count in self._window_grids)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Interval counts per dimension."""
        return self._quantizer.shape_

    @property
    def ndim(self) -> int:
        """Dimensionality of the sketched feature space."""
        return len(self._quantizer.shape_)

    @property
    def lower(self) -> np.ndarray:
        """Fitted per-dimension lower bounds."""
        return self._quantizer.lower_

    @property
    def upper(self) -> np.ndarray:
        """Fitted per-dimension upper bounds (post edge-expansion)."""
        return self._quantizer.upper_

    @property
    def widths(self) -> np.ndarray:
        """Per-dimension cell widths."""
        return (self.upper - self.lower) / np.asarray(self.shape, dtype=np.float64)

    def total_mass(self) -> float:
        """Sum of stored densities (equals :attr:`n_seen` unless decayed or
        windowed)."""
        return self.grid.total_mass()

    # -- first-class operations -------------------------------------------------

    def ingest(self, X) -> np.ndarray:
        """Quantize one batch into the sketch; returns the per-point cells.

        Batches may arrive in any order and any split -- the sketch is
        associative and commutative -- but every batch must lie inside the
        configured bounds (quantization cannot extend the grid after the
        fact) and match the sketch dimensionality.  Empty batches are no-ops.
        """
        X = check_array(X, name="X_batch", allow_empty=True)
        if X.shape[1] != self.ndim:
            raise ValueError(
                f"batch has {X.shape[1]} features but the stream was started "
                f"with {self.ndim}."
            )
        if X.shape[0] == 0:
            return np.empty((0, self.ndim), dtype=np.int64)
        quantizer = self._quantizer
        if np.any(X < quantizer.lower_ - 1e-12) or np.any(X > quantizer.upper_ + 1e-12):
            raise ValueError(
                "batch contains values outside the configured bounds; streaming "
                "quantization cannot extend the grid after the fact."
            )
        cells = quantizer.transform(X)
        if self._window is None:
            self._grid.add_many(cells, 1.0)
        else:
            self._window_grids.append(
                (SparseGrid.from_coo(self.shape, cells, 1.0), X.shape[0])
            )
            while len(self._window_grids) > self._window:
                self._window_grids.popleft()
            self._grid_stale = True
        self.n_seen += X.shape[0]
        self.n_batches += 1
        return cells

    def merge(self, other: "StreamSketch") -> "StreamSketch":
        """Accumulate another sketch into this one (exact shard reduction).

        Both sketches must share identical geometry.  Coordinates from grids
        quantized against different bounds describe *different regions of
        space*, so merging them would silently produce wrong cells -- the
        mismatch raises instead, naming both geometries.
        """
        if not isinstance(other, StreamSketch):
            raise TypeError(
                f"can only merge another StreamSketch; got {type(other).__name__}."
            )
        if self._window is not None or other._window is not None:
            raise ValueError(
                "windowed sketches cannot be merged: the shards' batch "
                "arrival orders are not comparable, so a merged window would "
                "be ill-defined. Merge cumulative sketches (window=None)."
            )
        if self.shape != other.shape:
            raise ValueError(
                "cannot merge sketches quantized against different grids: this "
                f"sketch has shape {self.shape} but the other has {other.shape}; "
                "both streams must share identical bounds and scale."
            )
        if not (
            np.allclose(self.lower, other.lower)
            and np.allclose(self.upper, other.upper)
        ):
            raise ValueError(
                "cannot merge sketches quantized against different grids: this "
                f"sketch spans {_format_bounds(self.lower, self.upper)} but the "
                f"other spans {_format_bounds(other.lower, other.upper)}. Cell "
                "coordinates from the two quantizations describe different "
                "regions of space, so merging would silently corrupt the "
                "densities. Re-quantize one stream's raw points against the "
                "other's bounds (re-ingest the batches into a sketch built "
                "with those bounds) before merging."
            )
        self._grid.merge(other._grid)
        self.n_seen += other.n_seen
        self.n_batches += other.n_batches
        return self

    def coarsen(self, factor: Union[int, Sequence[int]]) -> SparseGrid:
        """The sketch mass at a dyadically coarser resolution (exact).

        Delegates to :meth:`repro.grid.SparseGrid.coarsen`: for power-of-two
        scales the result is bit-for-bit what quantizing the original stream
        at ``scale // factor`` would have produced.
        """
        return self.grid.coarsen(factor)

    def decay(self, factor: float) -> "StreamSketch":
        """Multiply every stored density by ``factor`` (exponential forgetting).

        Applied once per batch by drift-aware consumers, this makes the
        sketch an exponentially weighted view of the stream: mass from ``k``
        batches ago carries weight ``factor ** k``, so a drifted distribution
        dominates the sketch after a handful of batches instead of having to
        out-mass the entire history.  Composes with (but is usually an
        alternative to) the exact ``window`` policy.  :attr:`n_seen` keeps
        the raw count.
        """
        factor = float(factor)
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"decay factor must be in (0, 1]; got {factor}.")
        if factor < 1.0:
            for batch_grid, _ in self._window_grids:
                batch_grid.scale_values(factor)
            if not self._grid_stale:
                self._grid.scale_values(factor)
        return self

    def snapshot(self) -> SketchSnapshot:
        """Frozen deep copy of the current sketch state."""
        return SketchSnapshot(
            grid=self.grid.copy(),
            n_seen=self.n_seen,
            n_batches=self.n_batches,
            lower=self.lower.copy(),
            upper=self.upper.copy(),
        )

    def clear(self) -> "StreamSketch":
        """Drop all accumulated mass and counters, keeping the geometry."""
        self._grid = SparseGrid(self._quantizer.shape_)
        self._window_grids.clear()
        self._grid_stale = False
        self.n_seen = 0
        self.n_batches = 0
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamSketch(shape={self.shape}, n_seen={self.n_seen}, "
            f"occupied={self.grid.n_occupied})"
        )
