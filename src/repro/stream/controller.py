"""The drift-aware online control plane: ingest -> detect -> re-tune -> swap.

:class:`StreamController` closes the loop the rest of the repo leaves open:
batches flow into a fine-resolution :class:`~repro.stream.StreamSketch`, a
:class:`~repro.stream.DriftMonitor` checks the live sketch against the
currently served model on a cadence, and a confirmed drift triggers an
*incremental re-tune* -- :func:`repro.tune.tune_pyramid` re-run straight
from the live sketch.  The expensive part of a fit is the pass over the
points; the sketch already holds that quantization, so a re-tune is just
``S`` ``O(cells)`` grid-side passes plus the model freeze -- never a refit.

Publication goes through the blue/green
:meth:`~repro.serve.ModelRegistry.swap`: the new model is registered under a
fresh version name and the serving alias is rebound atomically, so
``predict`` traffic running concurrently with a re-tune never observes a
missing or torn model (in-flight micro-batches finish against the version
they started with).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs.slo import fire_contained
from repro.obs.trace import StageTimer, new_trace_id
from repro.serve.metrics import Telemetry
from repro.serve.model import ClusterModel
from repro.serve.service import ClusteringService
from repro.stream.drift import DriftMonitor, DriftReport
from repro.stream.sketch import StreamSketch
from repro.tune.pyramid import default_base_scale, is_power_of_two
from repro.tune.select import tune_pyramid
from repro.utils.validation import NotFittedError, check_positive_int


class StreamController:
    """Drift-aware online clustering: one name, always served, self re-tuning.

    Parameters
    ----------
    name:
        Serving name the live model is published under (the registry alias
        the blue/green swaps rebind).
    bounds:
        Explicit ``(lower, upper)`` feature-space bounds of the stream.
    n_features:
        Dimensionality of the stream.
    service:
        Optional externally managed :class:`~repro.serve.ClusteringService`;
        a private one is created (and owned, i.e. closed by
        :meth:`close`) when omitted.
    base_scale:
        Power-of-two resolution the sketch ingests at; defaults to the
        tuning subsystem's per-dimensionality base
        (:func:`repro.tune.default_base_scale`) -- ingest fine, serve
        coarse.
    levels:
        Wavelet decomposition levels the re-tune sweep evaluates.
    warmup:
        Minimum ingested samples before the first model is published.
    check_every:
        Run a drift check every this many ingested batches (once a model is
        published).
    window:
        Optional sliding-window length in batches for the sketch: the last
        ``window`` batches carry full weight and older ones are dropped
        exactly, so after a shift the sketch converges to a pure sample of
        the new distribution without losing effective sample size.  ``None``
        accumulates the full history.
    decay:
        Optional per-batch exponential forgetting factor in ``(0, 1]``
        applied to the sketch before each batch -- the smooth alternative to
        ``window`` (recent batches dominate geometrically).  Decay trades
        effective sample size for recency; prefer ``window`` when batches
        are large enough to re-tune from.  ``None`` keeps every batch at
        full weight.
    monitor:
        Optional pre-configured :class:`DriftMonitor`; a default one using
        this controller's pipeline parameters is created when omitted.
    on_drift:
        Optional alert callback fired (with the :class:`DriftReport`) every
        time a drift check flags drift, before the re-tune runs.  Exceptions
        it raises are contained -- counted in telemetry and in
        ``callback_errors_`` -- and never propagate into the control loop.
    on_swap:
        Optional callback fired (with ``(version, model)``) after every
        blue/green publication, the warmup publish included.  Contained the
        same way as ``on_drift``.  Both callbacks run on the ingesting
        thread inside the control loop's lock: keep them quick, and never
        call back into the controller from one (hand off to a queue or
        thread instead).
    wavelet, threshold, threshold_method, connectivity, min_cluster_cells,
    angle_divisor, backend:
        Grid-side pipeline parameters used by both the re-tune sweep and the
        drift monitor's fresh-partition pass.  ``backend`` selects the
        transform kernel (``"auto"`` = fastest registered; see
        :mod:`repro.wavelets.backends`), so every re-tune inherits the fast
        path and records it in the published artifact's metadata.
        ``wavelet`` may be a sequence and ``threshold`` may be ``"tune"``:
        both widen the re-tune sweep's axes (every re-tune re-picks the
        basis / level policy from the live sketch), and the winners are
        published in the swapped model's metadata (``wavelet`` /
        ``threshold_method``) so the monitor's fresh pass follows the
        served configuration.

    Attributes
    ----------
    telemetry:
        The :class:`~repro.serve.metrics.Telemetry` this controller reports
        into -- the service's own instance, so swap counts, drift-check
        history and contained callback errors all land in one
        ``telemetry.snapshot()``.
    callback_errors_:
        Contained exceptions raised by ``on_drift`` / ``on_swap`` so far.
    sketch:
        The live :class:`StreamSketch`.
    monitor:
        The :class:`DriftMonitor` watching it.
    service:
        The serving front door; :meth:`predict` delegates to it.
    model_:
        The most recently published :class:`~repro.serve.ClusterModel`.
    version_:
        Registry version name of the live model (``"<name>@v<k>"``).
    n_retunes_:
        Models published so far (the initial publish included).
    history_:
        The most recent :class:`DriftReport` results (bounded by
        ``history_limit`` so an always-on controller never accumulates
        unbounded state; ``n_checks_`` keeps the full count).
    """

    def __init__(
        self,
        name: str,
        bounds: Tuple[Sequence[float], Sequence[float]],
        n_features: int,
        *,
        service: Optional[ClusteringService] = None,
        base_scale: Optional[Union[int, Sequence[int]]] = None,
        levels: Sequence[int] = (1,),
        warmup: int = 1000,
        check_every: int = 1,
        window: Optional[int] = None,
        decay: Optional[float] = None,
        history_limit: int = 256,
        monitor: Optional[DriftMonitor] = None,
        on_drift: Optional[Callable[[DriftReport], None]] = None,
        on_swap: Optional[Callable[[str, ClusterModel], None]] = None,
        wavelet: str = "bior2.2",
        threshold="hard",
        threshold_method: str = "auto",
        connectivity: str = "auto",
        min_cluster_cells: int = 3,
        angle_divisor: float = 3.0,
        backend="auto",
    ) -> None:
        self.name = str(name)
        self._owns_service = service is None
        self.service = service if service is not None else ClusteringService()
        if base_scale is None:
            base_scale = default_base_scale(n_features)
        # The re-tune pyramid needs dyadically nesting resolutions; failing
        # here beats discovering it at the first publish, after a whole
        # warmup stream has been ingested.
        entries = (base_scale,) if np.isscalar(base_scale) else tuple(base_scale)
        if not all(is_power_of_two(int(s)) for s in entries):
            raise ValueError(
                f"base_scale must be a power of two per dimension (the "
                f"re-tune grid pyramid requires nesting dyadic resolutions); "
                f"got {base_scale!r}."
            )
        self.sketch = StreamSketch(
            bounds=bounds, scale=base_scale, n_features=n_features, window=window
        )
        self.levels = tuple(check_positive_int(lv, name="levels") for lv in levels)
        if not self.levels:
            raise ValueError("levels must contain at least one decomposition level.")
        self.warmup = check_positive_int(warmup, name="warmup")
        self.check_every = check_positive_int(check_every, name="check_every")
        if decay is not None:
            decay = float(decay)
            if not 0.0 < decay <= 1.0:
                raise ValueError(f"decay must be in (0, 1] or None; got {decay}.")
        self.decay = decay
        if not (isinstance(threshold, str) and threshold == "tune"):
            from repro.wavelets.thresholding import LevelPolicy

            LevelPolicy.parse(threshold)  # fail fast, before warmup is spent
        self._pipeline_params: Dict[str, object] = dict(
            wavelet=wavelet,
            threshold=threshold,
            threshold_method=threshold_method,
            connectivity=connectivity,
            min_cluster_cells=min_cluster_cells,
            angle_divisor=angle_divisor,
            backend=backend,
        )
        self.monitor = (
            monitor if monitor is not None else DriftMonitor(**self._pipeline_params)
        )
        self.on_drift = on_drift
        self.on_swap = on_swap
        # Share the service's telemetry so swap counts (recorded by
        # service.swap), drift history and callback errors read out of one
        # snapshot.
        self.telemetry: Telemetry = self.service.telemetry
        self.callback_errors_: int = 0
        self.model_: Optional[ClusterModel] = None
        self.version_: Optional[str] = None
        self.n_retunes_: int = 0
        self.n_checks_: int = 0
        self.history_: Deque[DriftReport] = deque(
            maxlen=check_positive_int(history_limit, name="history_limit")
        )
        self.last_report_: Optional[DriftReport] = None
        self.last_retune_seconds_: Optional[float] = None
        self._batches_since_check = 0
        # Batch count at which the settling re-tune is due.  A model re-tuned
        # the moment drift is flagged is built from a window that still mixes
        # pre- and post-shift batches; once the window has fully turned over
        # since the shift began (it began no later than one check interval
        # before the first flag), one more re-tune republishes from a clean
        # window.  Only meaningful for windowed sketches.
        self._resettle_at: Optional[int] = None
        # One writer mutates the sketch / publishes models at a time;
        # predict traffic goes through the service's own locks and is never
        # blocked by this.
        self._lock = threading.Lock()

    # -- online loop ------------------------------------------------------------

    def ingest(self, X_batch) -> Optional[DriftReport]:
        """Feed one batch through the control plane.

        Accumulates the batch into the sketch (after the optional decay),
        publishes the first model once ``warmup`` samples have arrived, and
        thereafter runs a drift check every ``check_every`` batches --
        re-tuning and hot-swapping the served model when drift is flagged.
        Returns the :class:`DriftReport` when a check ran, else ``None``.
        """
        with self._lock:
            if self.decay is not None:
                self.sketch.decay(self.decay)
            self.sketch.ingest(X_batch)
            if self.model_ is None:
                if self.sketch.n_seen >= self.warmup:
                    self._retune_locked()
                return None
            self._batches_since_check += 1
            if self._batches_since_check < self.check_every:
                return None
            self._batches_since_check = 0
            report = self.monitor.assess(self.sketch)
            self.n_checks_ += 1
            self.history_.append(report)
            self.last_report_ = report
            # Each drift check gets its own trace id so a check, the alert
            # it fired and the re-tune it triggered correlate across the
            # telemetry stream and the JSON logs.
            self.telemetry.record_drift_check(report, trace_id=new_trace_id())
            if report.drifted:
                self._fire(self.on_drift, "on_drift", report)
            settling_due = (
                self._resettle_at is not None
                and self.sketch.n_batches >= self._resettle_at
            )
            if report.drifted or settling_due:
                self._retune_locked()
                if settling_due:
                    # The window has fully turned over since the shift began;
                    # this re-tune came from a clean window, ending the
                    # episode (later drifts start a new one).
                    self._resettle_at = None
                elif self.sketch.window is not None and self._resettle_at is None:
                    self._resettle_at = (
                        self.sketch.n_batches - self.check_every + self.sketch.window
                    )
            return report

    def retune(self) -> ClusterModel:
        """Re-tune from the live sketch and hot-swap the served model now.

        The manual trigger for what a drifted check does automatically:
        re-run the grid-pyramid sweep over the sketch (one quantization
        already in hand), freeze the winner into a
        :class:`~repro.serve.ClusterModel` and publish it with an atomic
        blue/green swap.  Raises ``ValueError`` when the sketch is empty or
        every candidate resolution is degenerate.
        """
        with self._lock:
            return self._retune_locked()

    def _retune_locked(self) -> ClusterModel:
        if self.sketch.n_seen == 0:
            raise ValueError("cannot publish a model from an empty sketch.")
        start = time.perf_counter()
        timer = StageTimer()
        with timer.stage("tune-sweep"):
            # The sweep coarsens its base grid in place along the pyramid;
            # give it a copy so the live sketch keeps accumulating
            # undisturbed.
            tune_result = tune_pyramid(
                self.sketch.grid.copy(), levels=self.levels, **self._pipeline_params
            )
        with timer.stage("publish"):
            best = tune_result.best.candidate
            model = ClusterModel(
                lower=self.sketch.lower,
                upper=self.sketch.upper,
                grid_shape=best.scale,
                level=best.level,
                threshold=best.pipeline.threshold.threshold,
                cell_coords=best.pipeline.cell_coords,
                cell_labels=best.pipeline.cell_labels,
                n_clusters=best.n_clusters,
                metadata={
                    "n_seen": int(self.sketch.n_seen),
                    "sketch_mass": float(self.sketch.total_mass()),
                    "retune_index": self.n_retunes_,
                    "tuning": tune_result.provenance(),
                    "stage_seconds": dict(best.pipeline.stage_seconds),
                    "transform_backend": best.pipeline.backend,
                    "wavelet": best.wavelet,
                    "threshold_method": best.threshold_method,
                },
            )
            self.version_ = self.service.swap(self.name, model)
        # The winning run's grid-side breakdown plus the control-plane
        # stages feed the same per-stage histograms the serving path fills,
        # so one scrape shows where re-tunes spend their time too.
        model.metadata["retune_stage_seconds"] = timer.as_dict()
        for stage, seconds in timer.seconds.items():
            self.telemetry.record_stage(stage, seconds)
        self.model_ = model
        self.monitor.rebase(model, self.sketch)
        self.n_retunes_ += 1
        self._batches_since_check = 0
        self.last_retune_seconds_ = time.perf_counter() - start
        self._fire(self.on_swap, "on_swap", self.version_, model)
        return model

    def _fire(self, callback, where: str, *args) -> None:
        """Run a user alert callback, containing (and counting) any failure.

        User code must never be able to take the control loop down: a
        raising callback is recorded in telemetry (``callbacks`` in the
        snapshot) and in ``callback_errors_``, then ingestion continues.
        Shares :func:`repro.obs.slo.fire_contained` with the SLO alerting
        plane -- one containment idiom for every user hook.
        """
        if fire_contained(callback, where, self.telemetry, *args) is False:
            self.callback_errors_ += 1

    # -- serving ----------------------------------------------------------------

    def predict(self, X) -> np.ndarray:
        """Labels of ``X`` under the live served model (via the service)."""
        if self.model_ is None:
            raise NotFittedError(
                f"no model has been published under {self.name!r} yet; ingest "
                "at least `warmup` samples (or call retune()) first."
            )
        return self.service.predict(self.name, X)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release the serving resources this controller owns.

        Closes the service only when the controller created it; an
        externally supplied service is left running (other consumers may
        still depend on it).
        """
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "StreamController":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamController(name={self.name!r}, n_seen={self.sketch.n_seen}, "
            f"retunes={self.n_retunes_}, version={self.version_!r})"
        )
