"""The online control plane: live sketches, drift detection, re-tuning.

The quantized grid is a tiny, associative, commutative sketch of everything a
stream has seen -- which is why AdaWave can ingest out-of-core, merge shards
exactly and serve from frozen artifacts.  This package makes that sketch a
first-class citizen and closes the loop from ingestion back to serving:

* :class:`StreamSketch` -- owns the fine-resolution COO sketch, the frozen
  quantization geometry and the ingest counters, with ``ingest``, ``merge``,
  ``coarsen``, ``decay`` and ``snapshot`` as first-class operations.
  :meth:`repro.core.adawave.AdaWave.partial_fit` and
  :func:`repro.serve.parallel_ingest` are thin adapters over it.
* :class:`DriftMonitor` -- scores the live sketch against the currently
  served :class:`~repro.serve.ClusterModel` with the label-free criteria of
  :mod:`repro.tune.scoring` (noise-band mass shift, partition-stability drop
  at the serving resolution) and flags drift, all in ``O(cells)``.
* :class:`StreamController` -- the drift-aware control plane: batches flow
  into the sketch, drift checks run on a cadence, and a confirmed drift
  triggers an *incremental re-tune* -- :func:`repro.tune.tune_pyramid` re-run
  from the live sketch (the quantization is already in hand, so the sweep is
  ~``S`` ``O(cells)`` passes, never a refit) -- whose winner is published
  through an atomic blue/green :meth:`~repro.serve.ModelRegistry.swap`, so
  in-flight ``predict`` traffic never observes a missing or torn model.
  ``on_drift`` / ``on_swap`` alert callbacks hook external systems into the
  loop (exceptions contained, never propagated), and every drift check,
  swap and contained callback error lands in the serving
  :class:`~repro.serve.Telemetry` snapshot.

Typical online loop::

    from repro.stream import StreamController

    plane = StreamController("live", bounds=(low, high), n_features=2)
    for batch in stream:
        report = plane.ingest(batch)        # drift check + re-tune inside
        labels = plane.predict(queries)     # always served, never blocked
"""

from repro.stream.sketch import SketchSnapshot, StreamSketch
from repro.stream.drift import DriftMonitor, DriftReport
from repro.stream.controller import StreamController

__all__ = [
    "DriftMonitor",
    "DriftReport",
    "SketchSnapshot",
    "StreamController",
    "StreamSketch",
]
