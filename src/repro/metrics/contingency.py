"""Contingency tables and the simple metrics derived from them."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import check_labels


def _encode(labels: np.ndarray) -> Tuple[np.ndarray, int]:
    """Map arbitrary integer labels to a dense ``0..k-1`` encoding."""
    unique, encoded = np.unique(labels, return_inverse=True)
    return encoded, len(unique)


def contingency_matrix(labels_true, labels_pred) -> np.ndarray:
    """Contingency table ``C[i, j] = |true cluster i ∩ predicted cluster j|``.

    Both label vectors may use arbitrary integer ids (including ``-1`` for
    noise); rows and columns follow the sorted order of the distinct labels.
    """
    labels_true = check_labels(labels_true, name="labels_true")
    labels_pred = check_labels(labels_pred, n_samples=len(labels_true), name="labels_pred")
    true_encoded, n_true = _encode(labels_true)
    pred_encoded, n_pred = _encode(labels_pred)
    table = np.zeros((n_true, n_pred), dtype=np.int64)
    np.add.at(table, (true_encoded, pred_encoded), 1)
    return table


def entropy(labels) -> float:
    """Shannon entropy (in nats) of a label assignment."""
    labels = check_labels(labels, name="labels")
    _, counts = np.unique(labels, return_counts=True)
    probabilities = counts / counts.sum()
    nonzero = probabilities[probabilities > 0]
    return float(-np.sum(nonzero * np.log(nonzero)))


def entropy_from_counts(counts: np.ndarray) -> float:
    """Shannon entropy (in nats) from a vector of class counts."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return 0.0
    probabilities = counts[counts > 0] / total
    return float(-np.sum(probabilities * np.log(probabilities)))


def purity_score(labels_true, labels_pred) -> float:
    """Cluster purity: fraction of points in their cluster's majority class.

    Purity is reported by some of the ablation benchmarks as a secondary
    sanity metric; unlike AMI it is not chance-adjusted (assigning every point
    its own cluster scores 1.0).
    """
    table = contingency_matrix(labels_true, labels_pred)
    return float(table.max(axis=0).sum() / table.sum())
