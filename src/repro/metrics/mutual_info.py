"""Mutual-information based clustering metrics.

Implements mutual information, its expectation under the hypergeometric
(permutation) model, the Adjusted Mutual Information of Vinh, Epps & Bailey
(the metric every experiment in the paper reports), normalized mutual
information and the adjusted Rand index.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln

from repro.metrics.contingency import contingency_matrix, entropy_from_counts


def mutual_info(labels_true, labels_pred) -> float:
    """Mutual information (in nats) between two labelings."""
    table = contingency_matrix(labels_true, labels_pred).astype(np.float64)
    return _mutual_info_from_table(table)


def _mutual_info_from_table(table: np.ndarray) -> float:
    total = table.sum()
    if total == 0:
        return 0.0
    joint = table / total
    row_marginal = joint.sum(axis=1, keepdims=True)
    col_marginal = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        log_term = np.log(joint) - np.log(row_marginal) - np.log(col_marginal)
    mask = joint > 0
    return float(np.sum(joint[mask] * log_term[mask]))


def expected_mutual_info(row_sums: np.ndarray, col_sums: np.ndarray) -> float:
    """Expected MI of two labelings with fixed marginals (permutation model).

    Follows Vinh et al. (2010): for every pair of clusters ``(i, j)`` the
    intersection size ``n_ij`` follows a hypergeometric distribution; the
    expectation sums ``P(n_ij) * (n_ij / N) * log(N n_ij / (a_i b_j))`` over
    all feasible ``n_ij``.  Log-gamma arithmetic keeps the factorial ratios
    stable for the dataset sizes used in the experiments.
    """
    row_sums = np.asarray(row_sums, dtype=np.float64)
    col_sums = np.asarray(col_sums, dtype=np.float64)
    total = row_sums.sum()
    if total != col_sums.sum():
        raise ValueError("row and column marginals must sum to the same total.")
    if total == 0:
        return 0.0

    expected = 0.0
    log_total = np.log(total)
    # Precompute the log-factorials that only depend on the marginals.
    gln_row = gammaln(row_sums + 1)
    gln_row_complement = gammaln(total - row_sums + 1)
    gln_col = gammaln(col_sums + 1)
    gln_col_complement = gammaln(total - col_sums + 1)
    gln_total = gammaln(total + 1)

    for i, a in enumerate(row_sums):
        for j, b in enumerate(col_sums):
            start = max(1.0, a + b - total)
            end = min(a, b)
            if end < start:
                continue
            nij = np.arange(start, end + 1.0)
            term_information = (nij / total) * (np.log(nij) + log_total - np.log(a) - np.log(b))
            log_probability = (
                gln_row[i]
                + gln_col[j]
                + gln_row_complement[i]
                + gln_col_complement[j]
                - gln_total
                - gammaln(nij + 1)
                - gammaln(a - nij + 1)
                - gammaln(b - nij + 1)
                - gammaln(total - a - b + nij + 1)
            )
            expected += float(np.sum(term_information * np.exp(log_probability)))
    return expected


def _generalized_mean(first: float, second: float, method: str) -> float:
    if method == "arithmetic":
        return 0.5 * (first + second)
    if method == "max":
        return max(first, second)
    if method == "min":
        return min(first, second)
    if method == "geometric":
        return float(np.sqrt(first * second))
    raise ValueError(
        f"average_method must be 'arithmetic', 'max', 'min' or 'geometric'; got {method!r}."
    )


def adjusted_mutual_info(labels_true, labels_pred, average_method: str = "arithmetic") -> float:
    """Adjusted Mutual Information (AMI) between two labelings.

    ``AMI = (MI - E[MI]) / (mean(H(U), H(V)) - E[MI])`` where the expectation
    is taken under the permutation model.  Returns 1.0 for identical
    partitions and values near 0 for independent ones; slightly negative
    values are possible for worse-than-chance agreement.
    """
    table = contingency_matrix(labels_true, labels_pred).astype(np.float64)
    row_sums = table.sum(axis=1)
    col_sums = table.sum(axis=0)
    # Degenerate single-cluster cases: both trivial partitions agree perfectly.
    if len(row_sums) == 1 and len(col_sums) == 1:
        return 1.0
    mi = _mutual_info_from_table(table)
    emi = expected_mutual_info(row_sums, col_sums)
    h_true = entropy_from_counts(row_sums)
    h_pred = entropy_from_counts(col_sums)
    denominator = _generalized_mean(h_true, h_pred, average_method) - emi
    if abs(denominator) < 1e-15:
        # Matches the convention of returning 1.0 when both partitions carry
        # no information beyond chance and agree, and 0.0 otherwise.
        return 1.0 if abs(mi - emi) < 1e-15 else 0.0
    return float((mi - emi) / denominator)


def normalized_mutual_info(labels_true, labels_pred, average_method: str = "arithmetic") -> float:
    """Normalized Mutual Information ``MI / mean(H(U), H(V))``."""
    table = contingency_matrix(labels_true, labels_pred).astype(np.float64)
    return normalized_mutual_info_from_table(table, average_method=average_method)


def normalized_mutual_info_from_table(
    table: np.ndarray, average_method: str = "arithmetic"
) -> float:
    """NMI computed directly from a (possibly weighted) contingency table.

    Accepts any non-negative table whose entries need not be integer counts.
    This is the entry point for mass-weighted comparisons -- e.g. the tuning
    subsystem compares the clusterings of two grid resolutions over the
    occupied base cells, weighting each cell by its density, without ever
    expanding back to per-point label vectors.
    """
    table = np.asarray(table, dtype=np.float64)
    if table.ndim != 2:
        raise ValueError(f"contingency table must be 2-D; got shape {table.shape}.")
    if np.any(table < 0):
        raise ValueError("contingency table entries must be non-negative.")
    row_sums = table.sum(axis=1)
    col_sums = table.sum(axis=0)
    if len(row_sums) == 1 and len(col_sums) == 1:
        return 1.0
    mi = _mutual_info_from_table(table)
    h_true = entropy_from_counts(row_sums)
    h_pred = entropy_from_counts(col_sums)
    denominator = _generalized_mean(h_true, h_pred, average_method)
    if denominator <= 1e-15:
        return 1.0 if mi <= 1e-15 else 0.0
    return float(mi / denominator)


def adjusted_rand_index(labels_true, labels_pred) -> float:
    """Adjusted Rand Index, chance-corrected pair-counting agreement."""
    table = contingency_matrix(labels_true, labels_pred).astype(np.float64)
    total = table.sum()
    if total < 2:
        return 1.0
    sum_comb_cells = float(np.sum(table * (table - 1))) / 2.0
    row_sums = table.sum(axis=1)
    col_sums = table.sum(axis=0)
    sum_comb_rows = float(np.sum(row_sums * (row_sums - 1))) / 2.0
    sum_comb_cols = float(np.sum(col_sums * (col_sums - 1))) / 2.0
    total_pairs = total * (total - 1) / 2.0
    expected = sum_comb_rows * sum_comb_cols / total_pairs
    maximum = 0.5 * (sum_comb_rows + sum_comb_cols)
    if abs(maximum - expected) < 1e-15:
        return 1.0
    return float((sum_comb_cells - expected) / (maximum - expected))
