"""Clustering evaluation metrics.

The paper evaluates every algorithm with Adjusted Mutual Information (AMI),
"a standard metric ranging from 0 at worst to 1 at best", computed only over
the objects that truly belong to a cluster (non-noise points) so that methods
without a noise concept are compared fairly.  This package implements the
whole chain from the contingency table up:

* :mod:`repro.metrics.contingency` -- contingency tables, entropies, purity;
* :mod:`repro.metrics.mutual_info` -- mutual information, expected mutual
  information under the permutation model, AMI, NMI and the adjusted Rand
  index;
* :mod:`repro.metrics.noise_aware` -- the paper's evaluation protocol
  (restrict to true non-noise points; optionally reassign detected noise with
  a k-means step for datasets without a noise label).
"""

from repro.metrics.contingency import (
    contingency_matrix,
    entropy,
    purity_score,
)
from repro.metrics.mutual_info import (
    mutual_info,
    expected_mutual_info,
    adjusted_mutual_info,
    normalized_mutual_info,
    normalized_mutual_info_from_table,
    adjusted_rand_index,
)
from repro.metrics.noise_aware import (
    ami_on_true_clusters,
    evaluate_clustering,
    ClusteringScores,
)

__all__ = [
    "contingency_matrix",
    "entropy",
    "purity_score",
    "mutual_info",
    "expected_mutual_info",
    "adjusted_mutual_info",
    "normalized_mutual_info",
    "normalized_mutual_info_from_table",
    "adjusted_rand_index",
    "ami_on_true_clusters",
    "evaluate_clustering",
    "ClusteringScores",
]
