"""The paper's evaluation protocol around AMI.

Two conventions from Section V matter when reproducing the numbers:

1. On the synthetic benchmarks, "the AMI only considers the objects which
   truly belong to a cluster (non-noise points)" -- so the metric is computed
   after dropping the points whose ground-truth label marks them as noise.
2. On real datasets, where every point has a semantic class and there is no
   noise label, "we run the k-means iteration on the final AdaWave result to
   assign every detected noise object to a 'true' cluster" -- the caller does
   this reassignment before scoring (see
   :func:`repro.baselines.postprocess.assign_noise_to_nearest_cluster`).

This module implements convention 1 and a convenience scorer bundling the
common metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.mutual_info import (
    adjusted_mutual_info,
    adjusted_rand_index,
    normalized_mutual_info,
)
from repro.utils.validation import check_labels

NOISE_LABEL = -1


@dataclass(frozen=True)
class ClusteringScores:
    """Bundle of the scores reported by the experiment harness."""

    ami: float
    nmi: float
    ari: float
    n_clusters_detected: int
    noise_fraction_detected: float

    def as_dict(self) -> dict:
        """Plain-dict view for table formatting."""
        return {
            "ami": self.ami,
            "nmi": self.nmi,
            "ari": self.ari,
            "n_clusters_detected": self.n_clusters_detected,
            "noise_fraction_detected": self.noise_fraction_detected,
        }


def ami_on_true_clusters(labels_true, labels_pred, noise_label: int = NOISE_LABEL) -> float:
    """AMI restricted to points whose ground truth is not noise.

    This is the fairness convention of the paper: techniques with no noise
    concept (k-means, EM) are not penalised for assigning the noise points
    somewhere, because those points are excluded from the metric entirely.
    """
    labels_true = check_labels(labels_true, name="labels_true")
    labels_pred = check_labels(labels_pred, n_samples=len(labels_true), name="labels_pred")
    mask = labels_true != noise_label
    if not mask.any():
        raise ValueError("every ground-truth label is noise; AMI is undefined.")
    return adjusted_mutual_info(labels_true[mask], labels_pred[mask])


def evaluate_clustering(
    labels_true,
    labels_pred,
    *,
    restrict_to_true_clusters: bool = True,
    noise_label: int = NOISE_LABEL,
) -> ClusteringScores:
    """Compute the bundle of scores the experiment tables report.

    Parameters
    ----------
    labels_true, labels_pred:
        Ground-truth and predicted label vectors; ``noise_label`` marks noise.
    restrict_to_true_clusters:
        Apply the paper's convention of scoring only true non-noise points.
    """
    labels_true = check_labels(labels_true, name="labels_true")
    labels_pred = check_labels(labels_pred, n_samples=len(labels_true), name="labels_pred")

    predicted_clusters = set(int(label) for label in labels_pred if label != noise_label)
    noise_fraction = float(np.mean(labels_pred == noise_label))

    if restrict_to_true_clusters:
        mask = labels_true != noise_label
        if not mask.any():
            raise ValueError("every ground-truth label is noise; scores are undefined.")
        scored_true = labels_true[mask]
        scored_pred = labels_pred[mask]
    else:
        scored_true = labels_true
        scored_pred = labels_pred

    return ClusteringScores(
        ami=adjusted_mutual_info(scored_true, scored_pred),
        nmi=normalized_mutual_info(scored_true, scored_pred),
        ari=adjusted_rand_index(scored_true, scored_pred),
        n_clusters_detected=len(predicted_clusters),
        noise_fraction_detected=noise_fraction,
    )
