"""Connected components over occupied grid cells.

After threshold filtering, the cells that survive are grouped into clusters:
two cells belong to the same cluster when they are adjacent in the grid.  The
paper (like WaveCluster) uses grid adjacency, so this module provides both
face adjacency (cells differing by one step along a single axis -- 2d
neighbours) and full adjacency (all ``3**d - 1`` surrounding cells, useful in
2-D where diagonal contact should connect ring-shaped clusters).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.spatial.union_find import UnionFind

Cell = Tuple[int, ...]

_FULL_CONNECTIVITY_MAX_DIM = 8


def neighbor_offsets(ndim: int, connectivity: str = "face") -> List[Cell]:
    """Offsets of the neighbouring cells to examine during the merge pass.

    Only "positive" offsets are returned (the first non-zero component is
    positive); the union-find makes the relation symmetric, so each adjacent
    pair only needs to be visited once.
    """
    if ndim < 1:
        raise ValueError(f"ndim must be >= 1; got {ndim}.")
    if connectivity == "face":
        offsets: List[Cell] = []
        for axis in range(ndim):
            offset = [0] * ndim
            offset[axis] = 1
            offsets.append(tuple(offset))
        return offsets
    if connectivity == "full":
        if ndim > _FULL_CONNECTIVITY_MAX_DIM:
            raise ValueError(
                f"full connectivity enumerates 3**d - 1 neighbours and is limited to "
                f"d <= {_FULL_CONNECTIVITY_MAX_DIM}; got d = {ndim}. Use 'face' instead."
            )
        offsets = []
        for offset in product((-1, 0, 1), repeat=ndim):
            if all(c == 0 for c in offset):
                continue
            first_nonzero = next(c for c in offset if c != 0)
            if first_nonzero > 0:
                offsets.append(offset)
        return offsets
    raise ValueError(f"connectivity must be 'face' or 'full'; got {connectivity!r}.")


def connected_components(
    cells: Iterable[Cell],
    connectivity: str = "face",
    shape: Sequence[int] = None,
) -> Dict[Cell, int]:
    """Label the connected components of a set of grid cells.

    Parameters
    ----------
    cells:
        Occupied cell coordinates (each a tuple of ints).
    connectivity:
        ``"face"`` (2d neighbours) or ``"full"`` (3**d - 1 neighbours).
    shape:
        Optional grid shape; when provided, neighbours outside the grid are
        never probed (a micro-optimisation -- correctness does not depend on
        it because only occupied cells can match).

    Returns
    -------
    dict
        Mapping from cell to a dense component label ``0, 1, 2, ...`` assigned
        in deterministic (sorted cell) order.
    """
    cell_list = sorted(set(tuple(int(c) for c in cell) for cell in cells))
    if not cell_list:
        return {}
    ndim = len(cell_list[0])
    if any(len(cell) != ndim for cell in cell_list):
        raise ValueError("all cells must have the same dimensionality.")

    occupied = set(cell_list)
    union = UnionFind(cell_list)
    offsets = neighbor_offsets(ndim, connectivity)
    for cell in cell_list:
        for offset in offsets:
            neighbor = tuple(c + o for c, o in zip(cell, offset))
            if shape is not None and any(
                not 0 <= coordinate < size for coordinate, size in zip(neighbor, shape)
            ):
                continue
            if neighbor in occupied:
                union.union(cell, neighbor)

    # Dense labels in sorted-cell order so the labelling is deterministic and
    # independent of hash iteration order.
    labels: Dict[Cell, int] = {}
    root_to_label: Dict[Cell, int] = {}
    next_label = 0
    for cell in cell_list:
        root = union.find(cell)
        if root not in root_to_label:
            root_to_label[root] = next_label
            next_label += 1
        labels[cell] = root_to_label[root]
    return labels


def component_sizes(labels: Dict[Cell, int]) -> Dict[int, int]:
    """Number of cells in every component of a labelling."""
    sizes: Dict[int, int] = {}
    for label in labels.values():
        sizes[label] = sizes.get(label, 0) + 1
    return sizes
