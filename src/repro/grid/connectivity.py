"""Connected components over occupied grid cells.

After threshold filtering, the cells that survive are grouped into clusters:
two cells belong to the same cluster when they are adjacent in the grid.  The
paper (like WaveCluster) uses grid adjacency, so this module provides both
face adjacency (cells differing by one step along a single axis -- 2d
neighbours) and full adjacency (all ``3**d - 1`` surrounding cells, useful in
2-D where diagonal contact should connect ring-shaped clusters).

The labeling itself is vectorized: the occupied cells are encoded as sorted
int64 linear codes, each positive neighbour offset becomes one shifted-code
binary search (a sort-based neighbour join), and the resulting adjacency
pairs are merged with the array union-find of
:class:`repro.spatial.union_find.ArrayUnionFind`.  The per-cell hash-probing
implementation is kept as a fallback for grids whose dense extent does not
fit an int64 code, and as the reference the property tests compare against.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.spatial.union_find import ArrayUnionFind, UnionFind

Cell = Tuple[int, ...]

_FULL_CONNECTIVITY_MAX_DIM = 8

#: Largest dense extent for which int64 linear codes are used.
_MAX_ENCODABLE = 2**62


def neighbor_offsets(ndim: int, connectivity: str = "face") -> List[Cell]:
    """Offsets of the neighbouring cells to examine during the merge pass.

    Only "positive" offsets are returned (the first non-zero component is
    positive); the union-find makes the relation symmetric, so each adjacent
    pair only needs to be visited once.
    """
    if ndim < 1:
        raise ValueError(f"ndim must be >= 1; got {ndim}.")
    if connectivity == "face":
        offsets: List[Cell] = []
        for axis in range(ndim):
            offset = [0] * ndim
            offset[axis] = 1
            offsets.append(tuple(offset))
        return offsets
    if connectivity == "full":
        if ndim > _FULL_CONNECTIVITY_MAX_DIM:
            raise ValueError(
                f"full connectivity enumerates 3**d - 1 neighbours and is limited to "
                f"d <= {_FULL_CONNECTIVITY_MAX_DIM}; got d = {ndim}. Use 'face' instead."
            )
        offsets = []
        for offset in product((-1, 0, 1), repeat=ndim):
            if all(c == 0 for c in offset):
                continue
            first_nonzero = next(c for c in offset if c != 0)
            if first_nonzero > 0:
                offsets.append(offset)
        return offsets
    raise ValueError(f"connectivity must be 'face' or 'full'; got {connectivity!r}.")


def label_components_array(coords: np.ndarray, connectivity: str = "face") -> np.ndarray:
    """Component labels of unique, lexicographically sorted cell coordinates.

    Parameters
    ----------
    coords:
        ``(m, d)`` int array of *distinct* cells sorted in lexicographic row
        order (the canonical order of :class:`~repro.grid.sparse_grid.SparseGrid`).
    connectivity:
        ``"face"`` or ``"full"``.

    Returns
    -------
    numpy.ndarray
        ``(m,)`` dense labels ``0, 1, 2, ...`` numbered by the first
        appearance of each component in row order -- identical to the
        labelling :func:`connected_components` assigns in sorted-cell order.
    """
    coords = np.asarray(coords, dtype=np.int64)
    m = len(coords)
    if m == 0:
        return np.empty(0, dtype=np.int64)
    # Shift into the occupied bounding box so arbitrary (even negative)
    # coordinates encode compactly; cells outside the box cannot be occupied,
    # so masking shifted neighbours against the box is exact.
    mins = coords.min(axis=0)
    shifted = coords - mins
    extent = shifted.max(axis=0) + 1
    total = 1
    for size in extent.tolist():
        total *= int(size)
    if total >= _MAX_ENCODABLE:
        labels_map = _connected_components_hash(
            [tuple(row) for row in coords.tolist()], connectivity
        )
        return np.fromiter(
            (labels_map[tuple(row)] for row in coords.tolist()), dtype=np.int64, count=m
        )

    strides = np.empty(len(extent), dtype=np.int64)
    strides[-1] = 1
    for axis in range(len(extent) - 2, -1, -1):
        strides[axis] = strides[axis + 1] * extent[axis + 1]
    codes = shifted @ strides

    union = ArrayUnionFind(m)
    sources: List[np.ndarray] = []
    targets: List[np.ndarray] = []
    for offset in neighbor_offsets(coords.shape[1], connectivity):
        moved = shifted + np.asarray(offset, dtype=np.int64)
        in_box = np.all((moved >= 0) & (moved < extent), axis=1)
        if not in_box.any():
            continue
        src = np.flatnonzero(in_box)
        neighbor_codes = moved[in_box] @ strides
        pos = np.searchsorted(codes, neighbor_codes)
        pos = np.minimum(pos, m - 1)
        found = codes[pos] == neighbor_codes
        if found.any():
            sources.append(src[found])
            targets.append(pos[found])
    if sources:
        union.union_pairs(np.concatenate(sources), np.concatenate(targets))
    return union.labels()


def _connected_components_hash(
    cell_list: List[Cell], connectivity: str
) -> Dict[Cell, int]:
    """The original per-cell hash-probing labeling (reference / fallback)."""
    occupied = set(cell_list)
    union = UnionFind(cell_list)
    offsets = neighbor_offsets(len(cell_list[0]), connectivity)
    for cell in cell_list:
        for offset in offsets:
            neighbor = tuple(c + o for c, o in zip(cell, offset))
            if neighbor in occupied:
                union.union(cell, neighbor)
    labels: Dict[Cell, int] = {}
    root_to_label: Dict[Cell, int] = {}
    next_label = 0
    for cell in cell_list:
        root = union.find(cell)
        if root not in root_to_label:
            root_to_label[root] = next_label
            next_label += 1
        labels[cell] = root_to_label[root]
    return labels


def connected_components(
    cells: Iterable[Cell],
    connectivity: str = "face",
    shape: Sequence[int] = None,
) -> Dict[Cell, int]:
    """Label the connected components of a set of grid cells.

    Parameters
    ----------
    cells:
        Occupied cell coordinates (each a tuple of ints).
    connectivity:
        ``"face"`` (2d neighbours) or ``"full"`` (3**d - 1 neighbours).
    shape:
        Optional grid shape, accepted for backward compatibility.  The
        vectorized join already restricts probes to the occupied bounding
        box, so the argument no longer changes the work done.

    Returns
    -------
    dict
        Mapping from cell to a dense component label ``0, 1, 2, ...`` assigned
        in deterministic (sorted cell) order.
    """
    cell_list = sorted(set(tuple(int(c) for c in cell) for cell in cells))
    if not cell_list:
        return {}
    ndim = len(cell_list[0])
    if any(len(cell) != ndim for cell in cell_list):
        raise ValueError("all cells must have the same dimensionality.")
    # Validate connectivity eagerly (and fail on unsupported dimensions) the
    # same way the per-cell implementation did.
    neighbor_offsets(ndim, connectivity)
    del shape
    coords = np.asarray(cell_list, dtype=np.int64)
    labels = label_components_array(coords, connectivity=connectivity)
    return dict(zip(cell_list, labels.tolist()))


def component_sizes(labels: Dict[Cell, int]) -> Dict[int, int]:
    """Number of cells in every component of a labelling."""
    sizes: Dict[int, int] = {}
    for label in labels.values():
        sizes[label] = sizes.get(label, 0) + 1
    return sizes
