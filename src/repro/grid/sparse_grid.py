"""The sparse cell/density grid data structure ("grid labeling").

Algorithm 2 of the paper quantizes the feature space and stores *only* the
grids with non-zero density.  :class:`SparseGrid` is that structure.  It is
stored COO-style -- an ``(m, d)`` integer coordinate array plus an ``(m,)``
density vector, kept in lexicographic (row-major) cell order -- so every hot
operation (bulk accumulation, merging, per-dimension line extraction for the
wavelet pass, neighbour joins) is a vectorized array pass instead of a Python
loop over a dict.  The dict-flavoured scalar API of the original
implementation (``add``/``get``/``items``/``in``) is preserved on top of the
arrays: scalar mutations land in a small pending buffer that is folded into
the canonical arrays on the next read.

Canonical ordering makes the structure a *mergeable sketch*: two grids built
from disjoint batches of points merge into exactly the grid the union of the
batches would have produced, which is what enables the streaming
``AdaWave.partial_fit`` path.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

Cell = Tuple[int, ...]

#: Largest dense cell count for which int64 linear codes are used; beyond it
#: (e.g. 128 intervals in 9+ dimensions) the code falls back to purely
#: lexicographic row operations to avoid integer overflow.
_MAX_ENCODABLE = 2**62


def _lexsort_rows(coords: np.ndarray) -> np.ndarray:
    """Indices sorting the rows of ``coords`` lexicographically (first column
    most significant)."""
    return np.lexsort(coords.T[::-1])


def _row_change_mask(sorted_coords: np.ndarray) -> np.ndarray:
    """Boolean mask marking the first row of every run of equal sorted rows."""
    mask = np.empty(len(sorted_coords), dtype=bool)
    mask[:1] = True
    np.any(sorted_coords[1:] != sorted_coords[:-1], axis=1, out=mask[1:])
    return mask


class SparseGrid:
    """A d-dimensional grid that stores only occupied cells.

    Parameters
    ----------
    shape:
        Number of intervals along each dimension.
    cells:
        Optional initial ``{cell: density}`` mapping; densities accumulate if
        the same cell is given multiple times via :meth:`add`.
    """

    def __init__(self, shape: Sequence[int], cells: Mapping[Cell, float] = None) -> None:
        shape = tuple(int(s) for s in shape)
        if len(shape) == 0:
            raise ValueError("SparseGrid needs at least one dimension.")
        if any(s < 1 for s in shape):
            raise ValueError(f"every dimension must have at least one interval; got {shape}.")
        self._shape = shape
        ndim = len(shape)

        total = 1
        for s in shape:
            total *= s
        if total < _MAX_ENCODABLE:
            # C-order strides: the linear code of a cell is ``coords @ strides``
            # and code order coincides with lexicographic cell order.
            strides = np.empty(ndim, dtype=np.int64)
            strides[-1] = 1
            for axis in range(ndim - 2, -1, -1):
                strides[axis] = strides[axis + 1] * shape[axis + 1]
            self._strides: Optional[np.ndarray] = strides
        else:
            self._strides = None

        self._coords = np.empty((0, ndim), dtype=np.int64)
        self._values = np.empty(0, dtype=np.float64)
        self._codes: Optional[np.ndarray] = np.empty(0, dtype=np.int64) if self._strides is not None else None
        self._pending_chunks: List[Tuple[np.ndarray, np.ndarray]] = []
        self._pending_scalar: Dict[Cell, float] = {}
        if cells:
            for cell, density in cells.items():
                self.add(cell, density)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_coo(cls, shape: Sequence[int], coords, values) -> "SparseGrid":
        """Build a grid from parallel coordinate / density arrays.

        Duplicate coordinates are accumulated.  This is the vectorized bulk
        constructor the quantizer and the wavelet transform use.
        """
        grid = cls(shape)
        grid.add_many(coords, values)
        grid._consolidate()
        return grid

    @classmethod
    def _from_sorted(
        cls,
        shape: Tuple[int, ...],
        coords: np.ndarray,
        values: np.ndarray,
        codes: Optional[np.ndarray],
    ) -> "SparseGrid":
        """Internal fast path: adopt already-canonical (sorted, unique) arrays."""
        grid = cls(shape)
        grid._coords = coords
        grid._values = values
        if grid._strides is not None:
            grid._codes = codes if codes is not None else coords @ grid._strides
        return grid

    # -- pending-buffer management -------------------------------------------

    def _dirty(self) -> bool:
        return bool(self._pending_chunks or self._pending_scalar)

    def _consolidate(self) -> None:
        """Fold pending scalar / bulk additions into the canonical arrays."""
        if not self._dirty():
            return
        parts_c: List[np.ndarray] = [self._coords]
        parts_v: List[np.ndarray] = [self._values]
        parts_c.extend(chunk for chunk, _ in self._pending_chunks)
        parts_v.extend(vals for _, vals in self._pending_chunks)
        if self._pending_scalar:
            parts_c.append(np.array(list(self._pending_scalar.keys()), dtype=np.int64))
            parts_v.append(np.fromiter(self._pending_scalar.values(), dtype=np.float64))
        coords = np.concatenate(parts_c, axis=0)
        values = np.concatenate(parts_v)
        self._pending_chunks = []
        self._pending_scalar = {}

        if self._strides is not None:
            codes = coords @ self._strides
            order = np.argsort(codes, kind="stable")
            sorted_codes = codes[order]
            keep = np.empty(len(sorted_codes), dtype=bool)
            keep[:1] = True
            np.not_equal(sorted_codes[1:], sorted_codes[:-1], out=keep[1:])
        else:
            order = _lexsort_rows(coords)
            keep = _row_change_mask(coords[order])
            sorted_codes = None
        starts = np.flatnonzero(keep)
        self._values = np.add.reduceat(values[order], starts)
        self._coords = np.ascontiguousarray(coords[order][starts])
        if sorted_codes is not None:
            self._codes = sorted_codes[starts]

    def _find_row(self, cell: Cell) -> int:
        """Row index of ``cell`` in the canonical arrays, or -1 if absent."""
        self._consolidate()
        if len(self._values) == 0:
            return -1
        cell_arr = np.asarray(cell, dtype=np.int64)
        if self._strides is not None:
            code = int(cell_arr @ self._strides)
            row = int(np.searchsorted(self._codes, code))
            if row < len(self._codes) and self._codes[row] == code:
                return row
            return -1
        matches = np.flatnonzero(np.all(self._coords == cell_arr, axis=1))
        return int(matches[0]) if len(matches) else -1

    # -- basic container protocol -------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        """Number of intervals along each dimension."""
        return self._shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self._shape)

    @property
    def n_occupied(self) -> int:
        """Number of cells with stored density."""
        self._consolidate()
        return len(self._values)

    @property
    def n_total_cells(self) -> int:
        """Total number of cells the dense grid would have (``prod(shape)``)."""
        return int(np.prod([float(s) for s in self._shape]))

    @property
    def coords(self) -> np.ndarray:
        """``(m, d)`` occupied cell coordinates in lexicographic order.

        The returned array is the grid's internal storage -- treat it as
        read-only.
        """
        self._consolidate()
        return self._coords

    @property
    def values(self) -> np.ndarray:
        """``(m,)`` densities aligned with :attr:`coords` (read-only view)."""
        self._consolidate()
        return self._values

    def __len__(self) -> int:
        return self.n_occupied

    def __iter__(self) -> Iterator[Cell]:
        self._consolidate()
        for row in self._coords.tolist():
            yield tuple(row)

    def __contains__(self, cell: Cell) -> bool:
        return self._find_row(tuple(cell)) >= 0

    def __getitem__(self, cell: Cell) -> float:
        row = self._find_row(tuple(cell))
        if row < 0:
            raise KeyError(tuple(cell))
        return float(self._values[row])

    def get(self, cell: Cell, default: float = 0.0) -> float:
        """Density of ``cell`` (0.0 when the cell is unoccupied)."""
        row = self._find_row(tuple(cell))
        return float(self._values[row]) if row >= 0 else default

    def items(self) -> Iterable[Tuple[Cell, float]]:
        """Iterate over ``(cell, density)`` pairs in lexicographic cell order."""
        self._consolidate()
        return list(zip(map(tuple, self._coords.tolist()), self._values.tolist()))

    def cells(self) -> List[Cell]:
        """List of occupied cell coordinates (lexicographic order)."""
        self._consolidate()
        return [tuple(row) for row in self._coords.tolist()]

    def densities(self) -> np.ndarray:
        """Densities of the occupied cells, aligned with :meth:`cells`."""
        self._consolidate()
        return self._values.copy()

    # -- mutation -------------------------------------------------------------

    def _validate_cell(self, cell: Cell) -> Cell:
        cell = tuple(int(c) for c in cell)
        if len(cell) != self.ndim:
            raise ValueError(f"cell {cell} has {len(cell)} coordinates; grid is {self.ndim}-D.")
        for coordinate, size in zip(cell, self._shape):
            if not 0 <= coordinate < size:
                raise ValueError(f"cell {cell} is outside the grid of shape {self._shape}.")
        return cell

    def _validate_coords(self, coords) -> np.ndarray:
        coords = np.asarray(coords, dtype=np.int64)
        if coords.ndim != 2 or coords.shape[1] != self.ndim:
            raise ValueError(
                f"coords must have shape (k, {self.ndim}); got {coords.shape}."
            )
        if len(coords):
            shape_arr = np.asarray(self._shape, dtype=np.int64)
            if np.any(coords < 0) or np.any(coords >= shape_arr):
                bad = coords[np.any((coords < 0) | (coords >= shape_arr), axis=1)][0]
                raise ValueError(
                    f"cell {tuple(int(c) for c in bad)} is outside the grid of shape {self._shape}."
                )
        return coords

    def add(self, cell: Cell, density: float = 1.0) -> None:
        """Accumulate ``density`` into ``cell`` (Algorithm 2's ``G.get(gid) += 1``)."""
        cell = self._validate_cell(cell)
        self._pending_scalar[cell] = self._pending_scalar.get(cell, 0.0) + float(density)

    def add_many(self, coords, values) -> None:
        """Accumulate densities into many cells at once (vectorized).

        Parameters
        ----------
        coords:
            ``(k, d)`` integer cell coordinates; duplicates accumulate.
        values:
            Scalar or ``(k,)`` array of densities.
        """
        coords = self._validate_coords(coords)
        values = np.broadcast_to(
            np.asarray(values, dtype=np.float64), (len(coords),)
        ).copy()
        if len(coords):
            self._pending_chunks.append((np.ascontiguousarray(coords), values))

    def merge(self, other: "SparseGrid") -> "SparseGrid":
        """Accumulate every cell of ``other`` into this grid (in place).

        Both grids must share the same shape.  Because the storage is a
        canonical COO sketch, merging per-batch grids is equivalent to having
        quantized the concatenated batches in one pass.
        """
        if not isinstance(other, SparseGrid):
            raise TypeError(f"can only merge another SparseGrid; got {type(other).__name__}.")
        if other.shape != self._shape:
            raise ValueError(
                f"cannot merge a grid of shape {other.shape} into one of shape {self._shape}."
            )
        other._consolidate()
        if len(other._values):
            self._pending_chunks.append((other._coords.copy(), other._values.copy()))
        return self

    def set(self, cell: Cell, density: float) -> None:
        """Overwrite the density of ``cell``."""
        cell = self._validate_cell(cell)
        row = self._find_row(cell)
        if row >= 0:
            self._values[row] = float(density)
        else:
            self._pending_scalar[cell] = float(density)

    def discard(self, cell: Cell) -> None:
        """Remove ``cell`` if present."""
        cell = tuple(int(c) for c in cell)
        row = self._find_row(cell)
        if row >= 0:
            self._coords = np.delete(self._coords, row, axis=0)
            self._values = np.delete(self._values, row)
            if self._codes is not None:
                self._codes = np.delete(self._codes, row)

    def prune(self, threshold: float) -> "SparseGrid":
        """Return a new grid keeping only cells with ``density > threshold``."""
        self._consolidate()
        mask = self._values > threshold
        return SparseGrid._from_sorted(
            self._shape,
            np.ascontiguousarray(self._coords[mask]),
            self._values[mask].copy(),
            self._codes[mask] if self._codes is not None else None,
        )

    def scale_values(self, factor: float) -> "SparseGrid":
        """Multiply every stored density by ``factor`` in place.

        The exponential-forgetting primitive of the streaming layer
        (:meth:`repro.stream.StreamSketch.decay`): applied once per batch it
        turns the sketch into an exponentially weighted view of the stream.
        """
        self._consolidate()
        self._values *= float(factor)
        return self

    def copy(self) -> "SparseGrid":
        """Deep copy of the grid."""
        self._consolidate()
        return SparseGrid._from_sorted(
            self._shape,
            self._coords.copy(),
            self._values.copy(),
            self._codes.copy() if self._codes is not None else None,
        )

    def coarsen(self, factor: Union[int, Sequence[int]]) -> "SparseGrid":
        """Merge blocks of ``factor`` cells per dimension into one cell.

        Coordinates are floor-divided by ``factor`` and the densities of the
        cells landing in the same coarse cell are summed, in one ``O(m log m)``
        pass over the occupied cells -- no access to the original points.

        This is the exact dyadic-rescale primitive of the tuning subsystem:
        because ``floor(x / (2w)) == floor(x / w) // 2`` for any cell width
        ``w``, coarsening a quantization at ``2s`` intervals reproduces the
        quantization at ``s`` intervals *bit for bit*::

            quantize(X, s) == quantize(X, 2 * s).coarsen(2)

        (for the same bounds), and factors compose:
        ``g.coarsen(2).coarsen(2) == g.coarsen(4)``.  That identity is what
        lets a whole pyramid of resolutions be evaluated from a single pass
        over the data.

        Parameters
        ----------
        factor:
            Block size per dimension -- a positive integer applied to every
            dimension or one value per dimension.  ``1`` leaves a dimension
            untouched.  The coarse shape is ``ceil(shape / factor)`` per
            dimension.
        """
        if np.isscalar(factor):
            factors = np.full(self.ndim, int(factor), dtype=np.int64)
        else:
            factors = np.asarray([int(f) for f in factor], dtype=np.int64)
            if factors.shape != (self.ndim,):
                raise ValueError(
                    f"factor must be a scalar or one value per dimension "
                    f"({self.ndim}); got {len(factors)} entries."
                )
        if np.any(factors < 1):
            raise ValueError(f"every coarsening factor must be >= 1; got {factors.tolist()}.")
        self._consolidate()
        new_shape = tuple(
            -(-size // int(f)) for size, f in zip(self._shape, factors)
        )
        if np.all(factors == 1):
            return self.copy()
        return SparseGrid.from_coo(new_shape, self._coords // factors, self._values.copy())

    # -- conversions -----------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Materialise the grid as a dense array (low-dimensional use only)."""
        if self.ndim > 6:
            raise ValueError(
                f"refusing to densify a {self.ndim}-D grid; it would need "
                f"{self.n_total_cells} cells."
            )
        self._consolidate()
        dense = np.zeros(self._shape)
        if len(self._values):
            dense[tuple(self._coords.T)] = self._values
        return dense

    @classmethod
    def from_dense(cls, array: np.ndarray, *, tolerance: float = 0.0) -> "SparseGrid":
        """Build a sparse grid from a dense array, skipping ``|value| <= tolerance``."""
        array = np.asarray(array, dtype=np.float64)
        mask = np.abs(array) > tolerance
        coords = np.argwhere(mask)
        return cls.from_coo(array.shape, coords, array[mask])

    # -- structure queries -------------------------------------------------------

    def _line_grouping(self, axis: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Group the occupied cells into 1-D lines parallel to ``axis``.

        Returns ``(keys, line_ids, positions, values)`` where ``keys`` is the
        ``(n_lines, d-1)`` array of distinct line keys in lexicographic order
        and ``line_ids``/``positions``/``values`` describe every occupied cell
        (``line_ids[i]`` indexes into ``keys``).
        """
        if not 0 <= axis < self.ndim:
            raise ValueError(f"axis must be in [0, {self.ndim}); got {axis}.")
        self._consolidate()
        keys_all = np.delete(self._coords, axis, axis=1)
        positions = self._coords[:, axis]
        if self.ndim == 1:
            keys = np.empty((1 if len(positions) else 0, 0), dtype=np.int64)
            line_ids = np.zeros(len(positions), dtype=np.int64)
            return keys, line_ids, positions, self._values
        order = np.lexsort((positions,) + tuple(keys_all[:, j] for j in range(self.ndim - 2, -1, -1)))
        keys_sorted = keys_all[order]
        if len(keys_sorted) == 0:
            return keys_sorted, np.empty(0, dtype=np.int64), positions, self._values
        new_line = _row_change_mask(keys_sorted)
        line_ids = np.cumsum(new_line) - 1
        return keys_sorted[new_line], line_ids, positions[order], self._values[order]

    def lines_along(self, axis: int) -> Iterator[Tuple[Cell, np.ndarray]]:
        """Iterate over the occupied 1-D lines parallel to ``axis``.

        Yields ``(key, values)`` where ``key`` is the cell coordinate with the
        ``axis`` entry removed and ``values`` is the dense length-``shape[axis]``
        density vector of that line.  Only lines containing at least one
        occupied cell are produced, in sorted key order.
        """
        keys, line_ids, positions, values = self._line_grouping(axis)
        length = self._shape[axis]
        # line_ids is non-decreasing, so every line is a contiguous slice.
        starts = np.searchsorted(line_ids, np.arange(len(keys)))
        ends = np.append(starts[1:], len(line_ids))
        for line_index, key in enumerate(tuple(row) for row in keys.tolist()):
            lo, hi = starts[line_index], ends[line_index]
            dense = np.zeros(length)
            dense[positions[lo:hi]] = values[lo:hi]
            yield key, dense

    def line_matrix(self, axis: int, out: Optional[np.ndarray] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Dense matrix of every occupied line along ``axis`` (vectorized).

        Returns ``(keys, matrix)``: ``keys`` is ``(n_lines, d - 1)`` and
        ``matrix`` is ``(n_lines, shape[axis])`` with the density vectors of
        the lines as rows, in the same (sorted) order as :meth:`lines_along`.
        ``out`` may supply a pre-allocated scratch array at least that big; it
        is zeroed and sliced, which lets a batch runner reuse one buffer
        across many transforms.
        """
        keys, line_ids, positions, values = self._line_grouping(axis)
        length = self._shape[axis]
        n_lines = len(keys)
        if out is not None and out.shape[0] >= n_lines and out.shape[1] >= length:
            matrix = out[:n_lines, :length]
            matrix[:] = 0.0
        else:
            matrix = np.zeros((n_lines, length))
        if n_lines:
            matrix[line_ids, positions] = values
        return keys, matrix

    def neighbor_pairs(self, connectivity: str = "face") -> Tuple[np.ndarray, np.ndarray]:
        """Index pairs of adjacent occupied cells (sort-based neighbour join).

        For every positive neighbour offset the occupied coordinates are
        shifted and matched against the canonical (sorted) cell codes with a
        binary search, so the join costs ``O(offsets * m log m)`` instead of a
        hash probe per cell and offset.  Returns ``(a, b)`` row-index arrays
        into :attr:`coords`; each adjacent pair appears exactly once.
        """
        from repro.grid.connectivity import neighbor_offsets

        self._consolidate()
        offsets = neighbor_offsets(self.ndim, connectivity)
        sources: List[np.ndarray] = []
        targets: List[np.ndarray] = []
        m = len(self._values)
        if m == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        shape_arr = np.asarray(self._shape, dtype=np.int64)
        for offset in offsets:
            shifted = self._coords + np.asarray(offset, dtype=np.int64)
            in_bounds = np.all((shifted >= 0) & (shifted < shape_arr), axis=1)
            if not in_bounds.any():
                continue
            src = np.flatnonzero(in_bounds)
            if self._strides is not None:
                codes = shifted[in_bounds] @ self._strides
                pos = np.searchsorted(self._codes, codes)
                pos_clipped = np.minimum(pos, m - 1)
                found = self._codes[pos_clipped] == codes
                sources.append(src[found])
                targets.append(pos_clipped[found])
            else:
                # Lexicographic fallback: match shifted rows via a per-offset
                # sorted merge (rare; only for astronomically large shapes).
                for row_index, row in zip(src, shifted[in_bounds]):
                    hit = self._find_row(tuple(int(c) for c in row))
                    if hit >= 0:
                        sources.append(np.array([row_index], dtype=np.int64))
                        targets.append(np.array([hit], dtype=np.int64))
        if not sources:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.concatenate(sources), np.concatenate(targets)

    def total_mass(self) -> float:
        """Sum of all stored densities."""
        self._consolidate()
        return float(self._values.sum())

    def memory_cells(self) -> int:
        """Number of stored entries -- the paper's memory-saving metric.

        A dense representation would store :attr:`n_total_cells` values; the
        sparse "grid labeling" representation stores only this many.
        """
        return self.n_occupied

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseGrid(shape={self._shape}, occupied={self.n_occupied}, "
            f"total={self.n_total_cells})"
        )
