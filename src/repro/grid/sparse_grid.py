"""The sparse ``{cell id: density}`` grid data structure ("grid labeling").

Algorithm 2 of the paper quantizes the feature space and stores *only* the
grids with non-zero density.  :class:`SparseGrid` is that structure: a
mapping from integer cell coordinates to a floating point density, together
with the grid shape (number of intervals per dimension).  It supports the
operations the rest of the pipeline needs -- accumulation, per-dimension line
extraction for the wavelet pass, dense materialisation for low-dimensional
baselines, and memory accounting for the ablation benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

Cell = Tuple[int, ...]


class SparseGrid:
    """A d-dimensional grid that stores only occupied cells.

    Parameters
    ----------
    shape:
        Number of intervals along each dimension.
    cells:
        Optional initial ``{cell: density}`` mapping; densities accumulate if
        the same cell is given multiple times via :meth:`add`.
    """

    def __init__(self, shape: Sequence[int], cells: Mapping[Cell, float] = None) -> None:
        shape = tuple(int(s) for s in shape)
        if len(shape) == 0:
            raise ValueError("SparseGrid needs at least one dimension.")
        if any(s < 1 for s in shape):
            raise ValueError(f"every dimension must have at least one interval; got {shape}.")
        self._shape = shape
        self._cells: Dict[Cell, float] = {}
        if cells:
            for cell, density in cells.items():
                self.add(cell, density)

    # -- basic container protocol -------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        """Number of intervals along each dimension."""
        return self._shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self._shape)

    @property
    def n_occupied(self) -> int:
        """Number of cells with stored density."""
        return len(self._cells)

    @property
    def n_total_cells(self) -> int:
        """Total number of cells the dense grid would have (``prod(shape)``)."""
        return int(np.prod([float(s) for s in self._shape]))

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells)

    def __contains__(self, cell: Cell) -> bool:
        return tuple(cell) in self._cells

    def __getitem__(self, cell: Cell) -> float:
        return self._cells[tuple(cell)]

    def get(self, cell: Cell, default: float = 0.0) -> float:
        """Density of ``cell`` (0.0 when the cell is unoccupied)."""
        return self._cells.get(tuple(cell), default)

    def items(self) -> Iterable[Tuple[Cell, float]]:
        """Iterate over ``(cell, density)`` pairs."""
        return self._cells.items()

    def cells(self) -> List[Cell]:
        """List of occupied cell coordinates."""
        return list(self._cells.keys())

    def densities(self) -> np.ndarray:
        """Densities of the occupied cells, in iteration order."""
        return np.fromiter(self._cells.values(), dtype=np.float64, count=len(self._cells))

    # -- mutation -------------------------------------------------------------

    def _validate_cell(self, cell: Cell) -> Cell:
        cell = tuple(int(c) for c in cell)
        if len(cell) != self.ndim:
            raise ValueError(f"cell {cell} has {len(cell)} coordinates; grid is {self.ndim}-D.")
        for coordinate, size in zip(cell, self._shape):
            if not 0 <= coordinate < size:
                raise ValueError(f"cell {cell} is outside the grid of shape {self._shape}.")
        return cell

    def add(self, cell: Cell, density: float = 1.0) -> None:
        """Accumulate ``density`` into ``cell`` (Algorithm 2's ``G.get(gid) += 1``)."""
        cell = self._validate_cell(cell)
        self._cells[cell] = self._cells.get(cell, 0.0) + float(density)

    def set(self, cell: Cell, density: float) -> None:
        """Overwrite the density of ``cell``."""
        cell = self._validate_cell(cell)
        self._cells[cell] = float(density)

    def discard(self, cell: Cell) -> None:
        """Remove ``cell`` if present."""
        self._cells.pop(tuple(cell), None)

    def prune(self, threshold: float) -> "SparseGrid":
        """Return a new grid keeping only cells with ``density > threshold``."""
        kept = {cell: density for cell, density in self._cells.items() if density > threshold}
        return SparseGrid(self._shape, kept)

    def copy(self) -> "SparseGrid":
        """Deep copy of the grid."""
        return SparseGrid(self._shape, dict(self._cells))

    # -- conversions -----------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Materialise the grid as a dense array (low-dimensional use only)."""
        if self.ndim > 6:
            raise ValueError(
                f"refusing to densify a {self.ndim}-D grid; it would need "
                f"{self.n_total_cells} cells."
            )
        dense = np.zeros(self._shape)
        for cell, density in self._cells.items():
            dense[cell] = density
        return dense

    @classmethod
    def from_dense(cls, array: np.ndarray, *, tolerance: float = 0.0) -> "SparseGrid":
        """Build a sparse grid from a dense array, skipping ``|value| <= tolerance``."""
        array = np.asarray(array, dtype=np.float64)
        grid = cls(array.shape)
        for cell in zip(*np.nonzero(np.abs(array) > tolerance)):
            grid.set(tuple(int(c) for c in cell), float(array[cell]))
        return grid

    # -- structure queries -------------------------------------------------------

    def lines_along(self, axis: int) -> Iterator[Tuple[Cell, np.ndarray]]:
        """Iterate over the occupied 1-D lines parallel to ``axis``.

        Yields ``(key, values)`` where ``key`` is the cell coordinate with the
        ``axis`` entry removed and ``values`` is the dense length-``shape[axis]``
        density vector of that line.  Only lines containing at least one
        occupied cell are produced -- this is what keeps the per-dimension
        wavelet pass proportional to the number of occupied cells.
        """
        if not 0 <= axis < self.ndim:
            raise ValueError(f"axis must be in [0, {self.ndim}); got {axis}.")
        lines: Dict[Cell, List[Tuple[int, float]]] = {}
        for cell, density in self._cells.items():
            key = cell[:axis] + cell[axis + 1 :]
            lines.setdefault(key, []).append((cell[axis], density))
        length = self._shape[axis]
        for key in sorted(lines):
            values = np.zeros(length)
            for position, density in lines[key]:
                values[position] = density
            yield key, values

    def total_mass(self) -> float:
        """Sum of all stored densities."""
        return float(sum(self._cells.values()))

    def memory_cells(self) -> int:
        """Number of stored entries -- the paper's memory-saving metric.

        A dense representation would store :attr:`n_total_cells` values; the
        sparse "grid labeling" representation stores only this many.
        """
        return len(self._cells)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseGrid(shape={self._shape}, occupied={self.n_occupied}, "
            f"total={self.n_total_cells})"
        )
