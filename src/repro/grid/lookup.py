"""Lookup table mapping transformed-space grids back to objects.

The clusters AdaWave finds live in the *transformed* feature space (the
approximation subband after ``level`` wavelet decompositions), whose grid is
coarser than the original quantization by a factor of ``2 ** level`` per
dimension.  The lookup table records, for every original cell, the
transformed cell it contributes to, so cluster labels can be propagated from
transformed grids to original grids and finally to the objects themselves
(Section IV-D).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

Cell = Tuple[int, ...]

NOISE_LABEL = -1


class LookupTable:
    """Maps original grid cells to transformed grid cells and labels objects.

    Parameters
    ----------
    level:
        Number of wavelet decomposition levels applied per dimension; each
        level halves the resolution, so an original coordinate ``c`` maps to
        ``c // 2 ** level``.
    """

    def __init__(self, level: int = 1) -> None:
        if level < 0:
            raise ValueError(f"level must be >= 0; got {level}.")
        self.level = int(level)
        self._factor = 2**self.level

    @property
    def downsample_factor(self) -> int:
        """Resolution reduction per dimension between original and transformed grids."""
        return self._factor

    def to_transformed(self, cell: Cell) -> Cell:
        """Transformed-space coordinates of an original-space cell."""
        return tuple(int(c) // self._factor for c in cell)

    def to_transformed_many(self, cells: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`to_transformed` for an ``(n, d)`` array of cells."""
        cells = np.asarray(cells, dtype=np.int64)
        if cells.ndim != 2:
            raise ValueError(f"cells must be a 2-D array; got shape {cells.shape}.")
        return cells // self._factor

    def build(self, original_cells: Iterable[Cell]) -> Dict[Cell, Cell]:
        """Explicit mapping ``{original cell: transformed cell}`` (paper's LT)."""
        return {tuple(cell): self.to_transformed(cell) for cell in original_cells}

    def label_cells(
        self,
        original_cells: Iterable[Cell],
        transformed_labels: Mapping[Cell, int],
    ) -> Dict[Cell, int]:
        """Propagate component labels from transformed cells to original cells.

        Original cells whose transformed counterpart was filtered out (not in
        ``transformed_labels``) are labelled as noise.
        """
        labels: Dict[Cell, int] = {}
        for cell in original_cells:
            cell = tuple(cell)
            labels[cell] = transformed_labels.get(self.to_transformed(cell), NOISE_LABEL)
        return labels

    def label_points(
        self,
        point_cells: np.ndarray,
        transformed_labels: Mapping[Cell, int],
    ) -> np.ndarray:
        """Assign every object the label of its transformed grid cell.

        Parameters
        ----------
        point_cells:
            ``(n_samples, d)`` array of original-space cell coordinates (from
            :class:`~repro.grid.quantizer.QuantizationResult`).
        transformed_labels:
            Mapping from transformed cell to cluster label.

        Returns
        -------
        numpy.ndarray
            Integer labels with ``-1`` for objects in filtered (noise) cells.
        """
        transformed = self.to_transformed_many(point_cells)
        labels = np.full(transformed.shape[0], NOISE_LABEL, dtype=np.int64)
        # Memoise per distinct transformed cell: the number of distinct cells
        # is far smaller than the number of points.
        cache: Dict[Cell, int] = {}
        for index, cell in enumerate(map(tuple, transformed.tolist())):
            if cell not in cache:
                cache[cell] = transformed_labels.get(cell, NOISE_LABEL)
            labels[index] = cache[cell]
        return labels
