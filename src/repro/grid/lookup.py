"""Lookup table mapping transformed-space grids back to objects.

The clusters AdaWave finds live in the *transformed* feature space (the
approximation subband after ``level`` wavelet decompositions), whose grid is
coarser than the original quantization by a factor of ``2 ** level`` per
dimension.  The lookup table records, for every original cell, the
transformed cell it contributes to, so cluster labels can be propagated from
transformed grids to original grids and finally to the objects themselves
(Section IV-D).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

Cell = Tuple[int, ...]

NOISE_LABEL = -1


class LookupTable:
    """Maps original grid cells to transformed grid cells and labels objects.

    Parameters
    ----------
    level:
        Number of wavelet decomposition levels applied per dimension; each
        level halves the resolution, so an original coordinate ``c`` maps to
        ``c // 2 ** level``.
    """

    def __init__(self, level: int = 1) -> None:
        if level < 0:
            raise ValueError(f"level must be >= 0; got {level}.")
        self.level = int(level)
        self._factor = 2**self.level

    @property
    def downsample_factor(self) -> int:
        """Resolution reduction per dimension between original and transformed grids."""
        return self._factor

    def to_transformed(self, cell: Cell) -> Cell:
        """Transformed-space coordinates of an original-space cell."""
        return tuple(int(c) // self._factor for c in cell)

    def to_transformed_many(self, cells: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`to_transformed` for an ``(n, d)`` array of cells."""
        cells = np.asarray(cells, dtype=np.int64)
        if cells.ndim != 2:
            raise ValueError(f"cells must be a 2-D array; got shape {cells.shape}.")
        return cells // self._factor

    def build(self, original_cells: Iterable[Cell]) -> Dict[Cell, Cell]:
        """Explicit mapping ``{original cell: transformed cell}`` (paper's LT)."""
        return {tuple(cell): self.to_transformed(cell) for cell in original_cells}

    def label_cells(
        self,
        original_cells: Iterable[Cell],
        transformed_labels: Mapping[Cell, int],
    ) -> Dict[Cell, int]:
        """Propagate component labels from transformed cells to original cells.

        Original cells whose transformed counterpart was filtered out (not in
        ``transformed_labels``) are labelled as noise.
        """
        labels: Dict[Cell, int] = {}
        for cell in original_cells:
            cell = tuple(cell)
            labels[cell] = transformed_labels.get(self.to_transformed(cell), NOISE_LABEL)
        return labels

    def label_points(
        self,
        point_cells: np.ndarray,
        transformed_labels: Mapping[Cell, int],
    ) -> np.ndarray:
        """Assign every object the label of its transformed grid cell.

        Parameters
        ----------
        point_cells:
            ``(n_samples, d)`` array of original-space cell coordinates (from
            :class:`~repro.grid.quantizer.QuantizationResult`).
        transformed_labels:
            Mapping from transformed cell to cluster label.

        Returns
        -------
        numpy.ndarray
            Integer labels with ``-1`` for objects in filtered (noise) cells.
        """
        if not transformed_labels:
            return np.full(len(np.asarray(point_cells)), NOISE_LABEL, dtype=np.int64)
        label_cells = np.asarray(list(transformed_labels.keys()), dtype=np.int64)
        label_values = np.fromiter(
            transformed_labels.values(), dtype=np.int64, count=len(label_cells)
        )
        return self.label_points_from_arrays(point_cells, label_cells, label_values)

    def label_points_from_arrays(
        self,
        point_cells: np.ndarray,
        label_cells: np.ndarray,
        label_values: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`label_points` over array-shaped label tables.

        ``label_cells`` is the ``(k, d)`` array of labelled transformed cells
        and ``label_values`` the matching ``(k,)`` labels.  All points are
        mapped in a single encode / ``searchsorted`` / fancy-index pass; cells
        without a labelled counterpart get :data:`NOISE_LABEL`.
        """
        transformed = self.to_transformed_many(point_cells)
        n_points = len(transformed)
        labels = np.full(n_points, NOISE_LABEL, dtype=np.int64)
        label_cells = np.asarray(label_cells, dtype=np.int64)
        label_values = np.asarray(label_values, dtype=np.int64)
        if len(label_cells) == 0 or n_points == 0:
            return labels
        if label_cells.ndim != 2 or label_cells.shape[1] != transformed.shape[1]:
            raise ValueError(
                f"label_cells must have shape (k, {transformed.shape[1]}); "
                f"got {label_cells.shape}."
            )
        # Encode both sides against the joint bounding box so arbitrary
        # coordinates stay collision free.
        mins = np.minimum(transformed.min(axis=0), label_cells.min(axis=0))
        maxs = np.maximum(transformed.max(axis=0), label_cells.max(axis=0))
        extent = maxs - mins + 1
        total = 1
        for size in extent.tolist():
            total *= int(size)
        if total >= 2**62:
            # int64 codes would overflow and collide; fall back to a memoised
            # per-distinct-cell dict lookup (the number of distinct
            # transformed cells is far smaller than the number of points).
            table = dict(zip(map(tuple, label_cells.tolist()), label_values.tolist()))
            cache: Dict[Cell, int] = {}
            for index, cell in enumerate(map(tuple, transformed.tolist())):
                if cell not in cache:
                    cache[cell] = table.get(cell, NOISE_LABEL)
                labels[index] = cache[cell]
            return labels
        strides = np.empty(len(extent), dtype=np.int64)
        strides[-1] = 1
        for axis in range(len(extent) - 2, -1, -1):
            strides[axis] = strides[axis + 1] * extent[axis + 1]
        point_codes = (transformed - mins) @ strides
        table_codes = (label_cells - mins) @ strides
        order = np.argsort(table_codes, kind="stable")
        table_codes = table_codes[order]
        table_values = label_values[order]
        pos = np.searchsorted(table_codes, point_codes)
        pos = np.minimum(pos, len(table_codes) - 1)
        found = table_codes[pos] == point_codes
        labels[found] = table_values[pos[found]]
        return labels
