"""Lookup table mapping transformed-space grids back to objects.

The clusters AdaWave finds live in the *transformed* feature space (the
approximation subband after ``level`` wavelet decompositions), whose grid is
coarser than the original quantization by a factor of ``2 ** level`` per
dimension.  The lookup table records, for every original cell, the
transformed cell it contributes to, so cluster labels can be propagated from
transformed grids to original grids and finally to the objects themselves
(Section IV-D).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

Cell = Tuple[int, ...]

NOISE_LABEL = -1

#: Largest dense extent for which int64 linear codes are collision free.
_MAX_ENCODABLE = 2**62


class CellLabelIndex:
    """Immutable cell -> cluster-label index over the surviving cells.

    The index is the heart of the lookup-only ("serving") path: it stores the
    ``(k, d)`` labelled transformed cells as linear codes sorted once at
    construction, so labelling ``n`` query cells afterwards is a single
    encode / ``searchsorted`` / fancy-index pass costing ``O(n log k)`` time
    and ``O(k)`` resident memory -- it never grows with the training-set
    size.  Cells outside the index (including anything outside the bounding
    box of the labelled cells) map to :data:`NOISE_LABEL`.

    For astronomically large extents whose linear codes would overflow
    ``int64`` (e.g. 128 intervals in 9+ dimensions), the index degrades to a
    hash table over cell tuples with a memoised per-distinct-cell probe.

    Parameters
    ----------
    cells:
        ``(k, d)`` integer coordinates of the labelled cells (duplicates are
        not allowed; the pipeline never produces them).
    labels:
        ``(k,)`` integer cluster labels aligned with ``cells``.
    """

    __slots__ = (
        "ndim", "n_cells", "_mins", "_maxs", "_strides",
        "_codes", "_values", "_table",
    )

    def __init__(self, cells, labels) -> None:
        cells = np.asarray(cells, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.int64)
        if cells.ndim != 2:
            raise ValueError(f"cells must be a 2-D array; got shape {cells.shape}.")
        if labels.shape != (len(cells),):
            raise ValueError(
                f"labels must have shape ({len(cells)},); got {labels.shape}."
            )
        self.ndim = cells.shape[1]
        self.n_cells = len(cells)
        self._table: Optional[Dict[Cell, int]] = None
        self._strides: Optional[np.ndarray] = None
        if self.n_cells == 0:
            self._mins = self._maxs = None
            self._codes = np.empty(0, dtype=np.int64)
            self._values = np.empty(0, dtype=np.int64)
            return
        self._mins = cells.min(axis=0)
        self._maxs = cells.max(axis=0)
        extent = self._maxs - self._mins + 1
        total = 1
        for size in extent.tolist():
            total *= int(size)
        if total >= _MAX_ENCODABLE:
            self._table = dict(zip(map(tuple, cells.tolist()), labels.tolist()))
            self._codes = np.empty(0, dtype=np.int64)
            self._values = np.empty(0, dtype=np.int64)
            return
        strides = np.empty(len(extent), dtype=np.int64)
        strides[-1] = 1
        for axis in range(len(extent) - 2, -1, -1):
            strides[axis] = strides[axis + 1] * extent[axis + 1]
        self._strides = strides
        codes = (cells - self._mins) @ strides
        order = np.argsort(codes, kind="stable")
        self._codes = codes[order]
        self._values = labels[order]

    def lookup(self, cells: np.ndarray) -> np.ndarray:
        """Labels of the query ``(n, d)`` cells; unmapped cells get noise."""
        cells = np.asarray(cells, dtype=np.int64)
        if cells.ndim != 2 or cells.shape[1] != self.ndim:
            raise ValueError(
                f"query cells must have shape (n, {self.ndim}); got {cells.shape}."
            )
        labels = np.full(len(cells), NOISE_LABEL, dtype=np.int64)
        if self.n_cells == 0 or len(cells) == 0:
            return labels
        if self._table is not None:
            cache: Dict[Cell, int] = {}
            for index, cell in enumerate(map(tuple, cells.tolist())):
                if cell not in cache:
                    cache[cell] = self._table.get(cell, NOISE_LABEL)
                labels[index] = cache[cell]
            return labels
        inside = np.all((cells >= self._mins) & (cells <= self._maxs), axis=1)
        if not inside.any():
            return labels
        query = np.flatnonzero(inside)
        codes = (cells[inside] - self._mins) @ self._strides
        pos = np.searchsorted(self._codes, codes)
        pos = np.minimum(pos, len(self._codes) - 1)
        found = self._codes[pos] == codes
        labels[query[found]] = self._values[pos[found]]
        return labels


class LookupTable:
    """Maps original grid cells to transformed grid cells and labels objects.

    Parameters
    ----------
    level:
        Number of wavelet decomposition levels applied per dimension; each
        level halves the resolution, so an original coordinate ``c`` maps to
        ``c // 2 ** level``.
    """

    def __init__(self, level: int = 1) -> None:
        if level < 0:
            raise ValueError(f"level must be >= 0; got {level}.")
        self.level = int(level)
        self._factor = 2**self.level

    @property
    def downsample_factor(self) -> int:
        """Resolution reduction per dimension between original and transformed grids."""
        return self._factor

    def to_transformed(self, cell: Cell) -> Cell:
        """Transformed-space coordinates of an original-space cell."""
        return tuple(int(c) // self._factor for c in cell)

    def to_transformed_many(self, cells: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`to_transformed` for an ``(n, d)`` array of cells."""
        cells = np.asarray(cells, dtype=np.int64)
        if cells.ndim != 2:
            raise ValueError(f"cells must be a 2-D array; got shape {cells.shape}.")
        return cells // self._factor

    def build(self, original_cells: Iterable[Cell]) -> Dict[Cell, Cell]:
        """Explicit mapping ``{original cell: transformed cell}`` (paper's LT)."""
        return {tuple(cell): self.to_transformed(cell) for cell in original_cells}

    def label_cells(
        self,
        original_cells: Iterable[Cell],
        transformed_labels: Mapping[Cell, int],
    ) -> Dict[Cell, int]:
        """Propagate component labels from transformed cells to original cells.

        Original cells whose transformed counterpart was filtered out (not in
        ``transformed_labels``) are labelled as noise.
        """
        labels: Dict[Cell, int] = {}
        for cell in original_cells:
            cell = tuple(cell)
            labels[cell] = transformed_labels.get(self.to_transformed(cell), NOISE_LABEL)
        return labels

    def label_points(
        self,
        point_cells: np.ndarray,
        transformed_labels: Mapping[Cell, int],
    ) -> np.ndarray:
        """Assign every object the label of its transformed grid cell.

        Parameters
        ----------
        point_cells:
            ``(n_samples, d)`` array of original-space cell coordinates (from
            :class:`~repro.grid.quantizer.QuantizationResult`).
        transformed_labels:
            Mapping from transformed cell to cluster label.

        Returns
        -------
        numpy.ndarray
            Integer labels with ``-1`` for objects in filtered (noise) cells.
        """
        if not transformed_labels:
            return np.full(len(np.asarray(point_cells)), NOISE_LABEL, dtype=np.int64)
        label_cells = np.asarray(list(transformed_labels.keys()), dtype=np.int64)
        label_values = np.fromiter(
            transformed_labels.values(), dtype=np.int64, count=len(label_cells)
        )
        return self.label_points_from_arrays(point_cells, label_cells, label_values)

    def label_points_from_arrays(
        self,
        point_cells: np.ndarray,
        label_cells: np.ndarray,
        label_values: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`label_points` over array-shaped label tables.

        ``label_cells`` is the ``(k, d)`` array of labelled transformed cells
        and ``label_values`` the matching ``(k,)`` labels.  All points are
        mapped in a single encode / ``searchsorted`` / fancy-index pass
        through a throwaway :class:`CellLabelIndex`; cells without a labelled
        counterpart get :data:`NOISE_LABEL`.
        """
        transformed = self.to_transformed_many(point_cells)
        label_cells = np.asarray(label_cells, dtype=np.int64)
        label_values = np.asarray(label_values, dtype=np.int64)
        if len(label_cells) == 0 or len(transformed) == 0:
            return np.full(len(transformed), NOISE_LABEL, dtype=np.int64)
        if label_cells.ndim != 2 or label_cells.shape[1] != transformed.shape[1]:
            raise ValueError(
                f"label_cells must have shape (k, {transformed.shape[1]}); "
                f"got {label_cells.shape}."
            )
        return CellLabelIndex(label_cells, label_values).lookup(transformed)
