"""Feature-space quantization (Algorithm 2 of the paper).

The quantizer divides the domain of every dimension into ``scale`` intervals,
assigns each object to the grid cell containing it and accumulates cell
densities into a :class:`~repro.grid.sparse_grid.SparseGrid`.  It also keeps
the per-point cell assignment so the final lookup-table step can map cluster
labels from grids back to objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.grid.sparse_grid import SparseGrid
from repro.utils.validation import check_array, check_positive_int, column_or_row


@dataclass
class QuantizationResult:
    """Everything the rest of the pipeline needs from the quantization step.

    Attributes
    ----------
    grid:
        Sparse grid of cell densities.
    cell_ids:
        Integer array of shape ``(n_samples, n_features)`` with every point's
        cell coordinates.
    lower, upper:
        Per-dimension domain bounds used for the quantization.
    widths:
        Per-dimension cell widths.
    """

    grid: SparseGrid
    cell_ids: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    widths: np.ndarray

    @property
    def n_samples(self) -> int:
        """Number of quantized objects."""
        return self.cell_ids.shape[0]

    def cell_of(self, index: int) -> Tuple[int, ...]:
        """Cell coordinates of the ``index``-th object."""
        return tuple(int(c) for c in self.cell_ids[index])


class GridQuantizer:
    """Quantize a feature space into ``scale`` intervals per dimension.

    Parameters
    ----------
    scale:
        Number of intervals per dimension -- either a single integer applied
        to every dimension (the paper's default of 128) or a sequence with one
        value per dimension.
    bounds:
        Optional explicit ``(lower, upper)`` arrays.  When omitted the bounds
        are taken from the data with a tiny relative margin so the maximum
        values fall inside the last interval rather than on its open edge.
    """

    def __init__(
        self,
        scale: Union[int, Sequence[int]] = 128,
        bounds: Optional[Tuple[Sequence[float], Sequence[float]]] = None,
    ) -> None:
        self.scale = scale
        self.bounds = bounds
        self.lower_: Optional[np.ndarray] = None
        self.upper_: Optional[np.ndarray] = None
        self.shape_: Optional[Tuple[int, ...]] = None

    def _resolve_scale(self, n_features: int) -> Tuple[int, ...]:
        if np.isscalar(self.scale):
            value = check_positive_int(self.scale, name="scale", minimum=2)
            return (value,) * n_features
        values = tuple(check_positive_int(v, name="scale", minimum=2) for v in self.scale)
        if len(values) != n_features:
            raise ValueError(
                f"scale has {len(values)} entries but the data has {n_features} features."
            )
        return values

    def fit(self, X) -> "GridQuantizer":
        """Learn the per-dimension bounds and interval counts from ``X``."""
        X = check_array(X, name="X")
        n_features = X.shape[1]
        self.shape_ = self._resolve_scale(n_features)
        if self.bounds is not None:
            lower = column_or_row(self.bounds[0], n_features, name="bounds[0]")
            upper = column_or_row(self.bounds[1], n_features, name="bounds[1]")
            if np.any(upper <= lower):
                bad = int(np.flatnonzero(upper <= lower)[0])
                raise ValueError(
                    f"bounds are degenerate in dimension {bad}: upper "
                    f"({upper[bad]}) must be strictly greater than lower ({lower[bad]})."
                )
        else:
            lower = X.min(axis=0)
            upper = X.max(axis=0)
        span = upper - lower
        # Degenerate (constant) dimensions get a unit span so every point
        # lands in interval 0 instead of dividing by zero.
        span = np.where(span <= 0, 1.0, span)
        # Expand the top edge slightly: paper intervals are right-open, so the
        # maximum value must fall strictly inside the last cell.
        upper = lower + span * (1.0 + 1e-9)
        if np.any(X < lower - 1e-12) or np.any(X > upper + 1e-12):
            raise ValueError("some samples fall outside the provided bounds.")
        self.lower_ = np.asarray(lower, dtype=np.float64)
        self.upper_ = np.asarray(upper, dtype=np.float64)
        return self

    @classmethod
    def from_fitted(
        cls,
        lower: Sequence[float],
        upper: Sequence[float],
        shape: Sequence[int],
    ) -> "GridQuantizer":
        """Rebuild a fitted quantizer from frozen bounds and interval counts.

        This is the deserialization path of the serving layer: a saved
        :class:`~repro.serve.ClusterModel` stores exactly ``(lower_, upper_,
        shape_)``, and this constructor restores a quantizer that maps new
        points onto the identical grid without ever seeing the training data.
        """
        lower = np.asarray(lower, dtype=np.float64)
        upper = np.asarray(upper, dtype=np.float64)
        shape = tuple(check_positive_int(s, name="shape", minimum=1) for s in shape)
        if lower.ndim != 1 or lower.shape != upper.shape or len(shape) != len(lower):
            raise ValueError(
                "lower, upper and shape must be 1-D and of equal length; got "
                f"{lower.shape}, {upper.shape} and {len(shape)} entries."
            )
        if np.any(upper <= lower):
            bad = int(np.flatnonzero(upper <= lower)[0])
            raise ValueError(
                f"bounds are degenerate in dimension {bad}: upper "
                f"({upper[bad]}) must be strictly greater than lower ({lower[bad]})."
            )
        quantizer = cls(scale=shape)
        quantizer.shape_ = shape
        quantizer.lower_ = lower.copy()
        quantizer.upper_ = upper.copy()
        return quantizer

    def _check_fitted(self) -> None:
        if self.lower_ is None or self.upper_ is None or self.shape_ is None:
            raise RuntimeError("GridQuantizer must be fitted before use.")

    def transform(self, X) -> np.ndarray:
        """Map points to integer cell coordinates (shape ``(n_samples, d)``)."""
        self._check_fitted()
        X = check_array(X, name="X")
        if X.shape[1] != len(self.shape_):
            raise ValueError(
                f"X has {X.shape[1]} features but the quantizer was fitted on {len(self.shape_)}."
            )
        widths = (self.upper_ - self.lower_) / np.asarray(self.shape_, dtype=np.float64)
        cells = np.floor((X - self.lower_) / widths).astype(np.int64)
        # Clip to the valid range so points exactly on the closed upper bound
        # (or passed through explicit bounds) stay inside the grid.
        cells = np.clip(cells, 0, np.asarray(self.shape_, dtype=np.int64) - 1)
        return cells

    def transform_with_mask(self, X) -> Tuple[np.ndarray, np.ndarray]:
        """Quantize arbitrary points, flagging the ones outside the grid.

        Unlike :meth:`transform` -- whose callers have already validated that
        every sample lies inside the bounds -- this is the serving-side entry
        point: new points may fall anywhere.  Returns ``(cells, inside)``
        where ``inside`` is a boolean mask of the points within the fitted
        bounds; the cell coordinates of outside points are clipped into the
        grid but should be ignored (the serving layer labels them noise).
        """
        self._check_fitted()
        X = check_array(X, name="X", allow_empty=True)
        if X.shape[1] != len(self.shape_):
            raise ValueError(
                f"X has {X.shape[1]} features but the quantizer was fitted on {len(self.shape_)}."
            )
        inside = np.all((X >= self.lower_) & (X <= self.upper_), axis=1)
        widths = (self.upper_ - self.lower_) / np.asarray(self.shape_, dtype=np.float64)
        cells = np.floor((X - self.lower_) / widths).astype(np.int64)
        np.clip(cells, 0, np.asarray(self.shape_, dtype=np.int64) - 1, out=cells)
        return cells, inside

    def fit_transform(self, X) -> QuantizationResult:
        """Fit the bounds and quantize ``X`` in one call (Algorithm 2)."""
        self.fit(X)
        return self.quantize(X)

    def quantize(self, X) -> QuantizationResult:
        """Quantize ``X`` into a :class:`QuantizationResult` using fitted bounds."""
        self._check_fitted()
        cell_ids = self.transform(X)
        grid = SparseGrid.from_coo(self.shape_, cell_ids, 1.0)
        widths = (self.upper_ - self.lower_) / np.asarray(self.shape_, dtype=np.float64)
        return QuantizationResult(
            grid=grid,
            cell_ids=cell_ids,
            lower=self.lower_.copy(),
            upper=self.upper_.copy(),
            widths=widths,
        )

    def cell_centers(self, cells: Sequence[Tuple[int, ...]]) -> np.ndarray:
        """Feature-space centre coordinates of the given cells."""
        self._check_fitted()
        cells_arr = np.asarray(list(cells), dtype=np.float64)
        if cells_arr.ndim != 2 or cells_arr.shape[1] != len(self.shape_):
            raise ValueError("cells must be a sequence of d-dimensional coordinates.")
        widths = (self.upper_ - self.lower_) / np.asarray(self.shape_, dtype=np.float64)
        return self.lower_ + (cells_arr + 0.5) * widths
