"""Sparse grid substrate: quantization, connectivity and lookup tables.

The paper's "grid labeling" idea is that a d-dimensional quantized feature
space should never be materialised densely: only cells that actually contain
points are stored.  :class:`SparseGrid` keeps them COO-style -- an ``(m, d)``
coordinate array plus an ``(m,)`` density vector in canonical lexicographic
order -- which keeps memory proportional to the number of occupied cells
rather than ``M ** d`` *and* makes every pipeline stage a vectorized array
pass: bulk accumulation (:meth:`SparseGrid.add_many`), sketch merging for
streaming ingestion (:meth:`SparseGrid.merge`), sort-based neighbour joins
(:meth:`SparseGrid.neighbor_pairs` / :func:`label_components_array`) and the
single-pass point labeling of :class:`LookupTable`.
"""

from repro.grid.sparse_grid import SparseGrid
from repro.grid.quantizer import GridQuantizer, QuantizationResult
from repro.grid.connectivity import (
    connected_components,
    label_components_array,
    neighbor_offsets,
)
from repro.grid.lookup import CellLabelIndex, LookupTable

__all__ = [
    "SparseGrid",
    "GridQuantizer",
    "QuantizationResult",
    "connected_components",
    "label_components_array",
    "neighbor_offsets",
    "CellLabelIndex",
    "LookupTable",
]
