"""Sparse grid substrate: quantization, connectivity and lookup tables.

The paper's "grid labeling" idea is that a d-dimensional quantized feature
space should never be materialised densely: only cells that actually contain
points are stored, as a mapping ``{cell id: density}``.  This keeps memory
proportional to the number of occupied cells rather than ``M ** d`` and is
what lets AdaWave scale to higher dimensional data than WaveCluster.
"""

from repro.grid.sparse_grid import SparseGrid
from repro.grid.quantizer import GridQuantizer, QuantizationResult
from repro.grid.connectivity import connected_components, neighbor_offsets
from repro.grid.lookup import LookupTable

__all__ = [
    "SparseGrid",
    "GridQuantizer",
    "QuantizationResult",
    "connected_components",
    "neighbor_offsets",
    "LookupTable",
]
