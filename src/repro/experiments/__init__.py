"""Experiment harness: one module per table / figure of the paper.

Every module exposes a ``run_*`` function that generates the workload, runs
the algorithms and returns a :class:`~repro.experiments.runner.ExperimentResult`
whose rows mirror the corresponding table or figure series:

========  =======================================  ===========================
ID        Paper artefact                           Module
========  =======================================  ===========================
E1        Fig. 1 / Fig. 2 running example          :mod:`repro.experiments.running_example`
E2        Fig. 7 / Fig. 8 noise sweep              :mod:`repro.experiments.noise_sweep`
E3        Table I real-world comparison            :mod:`repro.experiments.realworld`
E4        Table II Glass correlations              :mod:`repro.experiments.glass_correlation`
E5        Fig. 9 Roadmap case study                :mod:`repro.experiments.roadmap_case`
E6        Fig. 10 runtime scaling                  :mod:`repro.experiments.runtime`
E7        Design-choice ablations (this repo)      :mod:`repro.experiments.ablation`
E8        Serving-layer performance (this repo)    :mod:`repro.experiments.serving`
E9        Grid-pyramid auto-tuning (this repo)     :mod:`repro.experiments.tuning`
E10       Drift-aware online serving (this repo)   :mod:`repro.experiments.drift`
========  =======================================  ===========================

The benchmark harness under ``benchmarks/`` simply calls these functions with
reduced sizes so the whole suite regenerates every artefact in minutes.
"""

from repro.experiments.runner import (
    AlgorithmSpec,
    ExperimentResult,
    evaluate_algorithm,
    default_algorithms,
)
from repro.experiments.running_example import run_running_example
from repro.experiments.noise_sweep import run_noise_sweep
from repro.experiments.realworld import run_realworld_comparison
from repro.experiments.glass_correlation import run_glass_correlation
from repro.experiments.roadmap_case import run_roadmap_case_study
from repro.experiments.runtime import (
    run_backend_speedup,
    run_engine_speedup,
    run_runtime_comparison,
)
from repro.experiments.ablation import run_threshold_ablation, run_memory_ablation, run_wavelet_ablation
from repro.experiments.serving import (
    run_monitoring_overhead,
    run_parallel_ingest,
    run_predict_throughput,
    run_procpool_throughput,
    run_shm_throughput,
    run_tracing_overhead,
)
from repro.experiments.tuning import (
    run_tune_overhead,
    run_tuning_comparison,
    run_widened_sweep_overhead,
)
from repro.experiments.drift import run_drift_recovery, run_retune_cost
from repro.experiments.reporting import format_table

__all__ = [
    "AlgorithmSpec",
    "ExperimentResult",
    "evaluate_algorithm",
    "default_algorithms",
    "run_running_example",
    "run_noise_sweep",
    "run_realworld_comparison",
    "run_glass_correlation",
    "run_roadmap_case_study",
    "run_backend_speedup",
    "run_engine_speedup",
    "run_runtime_comparison",
    "run_threshold_ablation",
    "run_memory_ablation",
    "run_wavelet_ablation",
    "run_monitoring_overhead",
    "run_parallel_ingest",
    "run_predict_throughput",
    "run_procpool_throughput",
    "run_shm_throughput",
    "run_tracing_overhead",
    "run_tune_overhead",
    "run_tuning_comparison",
    "run_widened_sweep_overhead",
    "run_drift_recovery",
    "run_retune_cost",
    "format_table",
]
