"""E9 -- grid-pyramid auto-tuning: quality and overhead (this repo).

Two questions the tuning subsystem must answer with numbers:

* **Quality** -- does ``AdaWave(scale="tune")`` pick, without ground-truth
  labels, a resolution whose noise-aware AMI is competitive with the best
  fixed power-of-two scale?  :func:`run_tuning_comparison` sweeps the
  paper's synthetic noise suite and reports tuned-vs-fixed AMI per noise
  level.
* **Overhead** -- does sweeping ``S`` resolutions really cost about one fit
  plus ``S`` cheap grid passes, rather than ``S`` fits?
  :func:`run_tune_overhead` times a single fixed-scale fit, a pyramid sweep
  over several scales reusing that fit's quantization sketch, and the naive
  alternative of refitting per scale.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.core.adawave import AdaWave
from repro.datasets.synthetic import noise_sweep_dataset, scaled_runtime_dataset
from repro.experiments.runner import ExperimentResult
from repro.grid.lookup import LookupTable
from repro.grid.quantizer import GridQuantizer
from repro.metrics import ami_on_true_clusters
from repro.tune import tune_pyramid


def run_tuning_comparison(
    noise_fractions: Sequence[float] = (0.3, 0.5, 0.75, 0.9),
    n_per_cluster: int = 1500,
    fixed_scales: Sequence[int] = (8, 16, 32, 64, 128, 256),
    seed: int = 0,
) -> ExperimentResult:
    """Tuned-vs-fixed AMI on the synthetic noise suite (one row per fit).

    For every noise level, every fixed power-of-two scale is fitted and
    scored with the noise-aware AMI protocol, then ``AdaWave(scale="tune")``
    runs once (never seeing the labels) and is scored the same way.  The
    metadata reports the per-noise-level ratio of tuned AMI to the best
    fixed AMI; the acceptance bar elsewhere in the repo is 0.95.
    """
    result = ExperimentResult(
        experiment="E9: tuned vs fixed scale (noise suite)",
        columns=["noise", "scale", "ami", "n_clusters", "seconds", "tuned"],
        metadata={
            "noise_fractions": list(noise_fractions),
            "n_per_cluster": n_per_cluster,
            "fixed_scales": list(fixed_scales),
            "seed": seed,
        },
    )
    ratios = {}
    for noise in noise_fractions:
        dataset = noise_sweep_dataset(
            noise_fraction=noise, n_per_cluster=n_per_cluster, seed=seed
        )
        best_fixed = 0.0
        for scale in fixed_scales:
            model = AdaWave(scale=scale)
            start = time.perf_counter()
            model.fit(dataset.points)
            elapsed = time.perf_counter() - start
            ami = ami_on_true_clusters(dataset.labels, model.labels_)
            best_fixed = max(best_fixed, ami)
            result.add_row(
                noise=noise, scale=scale, ami=float(ami),
                n_clusters=model.n_clusters_, seconds=float(elapsed), tuned="",
            )
        tuned = AdaWave(scale="tune")
        start = time.perf_counter()
        tuned.fit(dataset.points)
        elapsed = time.perf_counter() - start
        tuned_ami = ami_on_true_clusters(dataset.labels, tuned.labels_)
        result.add_row(
            noise=noise,
            scale=tuned.tune_result_.scale,
            ami=float(tuned_ami),
            n_clusters=tuned.n_clusters_,
            seconds=float(elapsed),
            tuned="<- tuned",
        )
        ratios[noise] = float(tuned_ami / best_fixed) if best_fixed > 0 else 1.0
    result.metadata["tuned_to_best_fixed_ratio"] = ratios
    result.metadata["min_ratio"] = min(ratios.values()) if ratios else 1.0
    return result


def run_tune_overhead(
    n_points: int = 100_000,
    base_scale: int = 128,
    factors: Sequence[int] = (1, 2, 4, 8),
    noise_fraction: float = 0.75,
    seed: int = 0,
    repeats: int = 3,
    include_default_tune: bool = True,
) -> ExperimentResult:
    """Wall-clock cost of the pyramid sweep against single and repeated fits.

    Three timed configurations, best of ``repeats`` each:

    * ``fixed fit`` -- one ``AdaWave(scale=base_scale)`` fit, the baseline;
    * ``pyramid sweep`` -- quantize once at ``base_scale``, evaluate every
      ``factors`` resolution from that one sketch (:func:`tune_pyramid`) and
      label the points at the winning resolution: the tentpole claim is that
      this costs about one fit plus ``len(factors)`` grid passes;
    * ``refit per scale`` -- the naive alternative the sweep replaces: one
      full fit per resolution.

    ``include_default_tune`` adds the end-to-end ``AdaWave(scale="tune")``
    default (finer base, more resolutions) as an informational row.
    Metadata carries ``sweep_ratio`` (sweep / fixed fit) -- the benchmark
    floor asserts it stays <= 2 -- and ``refit_ratio`` for contrast.
    """
    dataset = scaled_runtime_dataset(n_points, noise_fraction=noise_fraction, seed=seed)
    X = dataset.points
    scales = [base_scale // factor for factor in factors]

    def _best(fn) -> float:
        best = np.inf
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def _sweep() -> None:
        quantization = GridQuantizer(scale=base_scale).fit_transform(X)
        tuned = tune_pyramid(quantization.grid, factors=tuple(factors))
        best = tuned.best.candidate
        LookupTable(level=best.level).label_points_from_arrays(
            quantization.cell_ids // best.factor,
            best.pipeline.cell_coords,
            best.pipeline.cell_labels,
        )

    def _refit_all() -> None:
        for scale in scales:
            AdaWave(scale=scale).fit(X)

    seconds_fixed = _best(lambda: AdaWave(scale=base_scale).fit(X))
    seconds_sweep = _best(_sweep)
    seconds_refit = _best(_refit_all)

    result = ExperimentResult(
        experiment="E9: pyramid-sweep overhead",
        columns=["configuration", "scales", "seconds", "ratio_to_fixed"],
        metadata={
            "n_points": dataset.n_samples,
            "base_scale": base_scale,
            "factors": list(factors),
            "noise_fraction": noise_fraction,
            "seed": seed,
            "sweep_ratio": float(seconds_sweep / max(seconds_fixed, 1e-9)),
            "refit_ratio": float(seconds_refit / max(seconds_fixed, 1e-9)),
        },
    )
    result.add_row(
        configuration="fixed fit", scales=str(base_scale),
        seconds=float(seconds_fixed), ratio_to_fixed=1.0,
    )
    result.add_row(
        configuration=f"pyramid sweep ({len(scales)} scales)",
        scales=",".join(map(str, scales)),
        seconds=float(seconds_sweep),
        ratio_to_fixed=result.metadata["sweep_ratio"],
    )
    result.add_row(
        configuration="refit per scale",
        scales=",".join(map(str, scales)),
        seconds=float(seconds_refit),
        ratio_to_fixed=result.metadata["refit_ratio"],
    )
    if include_default_tune:
        seconds_default = _best(lambda: AdaWave(scale="tune").fit(X))
        result.metadata["default_tune_ratio"] = float(
            seconds_default / max(seconds_fixed, 1e-9)
        )
        result.add_row(
            configuration="AdaWave(scale='tune') default",
            scales="auto (dyadic pyramid)",
            seconds=float(seconds_default),
            ratio_to_fixed=result.metadata["default_tune_ratio"],
        )
    return result


def run_widened_sweep_overhead(
    n_points: int = 100_000,
    base_scale: int = 128,
    noise_fraction: float = 0.75,
    seed: int = 0,
    repeats: int = 3,
) -> ExperimentResult:
    """Wall-clock cost of the threshold-policy sweep against a single fit.

    ``AdaWave(threshold="tune")`` at a fixed scale quantizes once and runs
    one grid pass per level policy ({hard, soft} x {global, per-level MAD}),
    so the widened sweep must cost a small multiple of one fit -- the
    grid-side stages are ``O(cells)``, never ``O(points)``.  Metadata
    carries ``widened_ratio`` (widened sweep / fixed fit); the benchmark
    ceiling pins it at 2.5x for the n = 100k configuration.
    """
    dataset = scaled_runtime_dataset(n_points, noise_fraction=noise_fraction, seed=seed)
    X = dataset.points

    def _best(fn) -> float:
        best = np.inf
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    seconds_fixed = _best(lambda: AdaWave(scale=base_scale).fit(X))
    widened = AdaWave(scale=base_scale, threshold="tune")
    seconds_widened = _best(lambda: widened.fit(X))

    result = ExperimentResult(
        experiment="E9: widened threshold-sweep overhead",
        columns=["configuration", "policies", "seconds", "ratio_to_fixed"],
        metadata={
            "n_points": dataset.n_samples,
            "base_scale": base_scale,
            "noise_fraction": noise_fraction,
            "seed": seed,
            "chosen_threshold_method": widened.threshold_method_,
            "widened_ratio": float(seconds_widened / max(seconds_fixed, 1e-9)),
        },
    )
    result.add_row(
        configuration="fixed fit",
        policies="global-hard",
        seconds=float(seconds_fixed),
        ratio_to_fixed=1.0,
    )
    result.add_row(
        configuration="threshold sweep (4 policies)",
        policies="{hard,soft} x {global,per-level}",
        seconds=float(seconds_widened),
        ratio_to_fixed=result.metadata["widened_ratio"],
    )
    return result
