"""E10 -- drift-aware online serving: detection, re-tune, hot-swap (this repo).

Not a paper artefact: this experiment characterises the online control plane
(:mod:`repro.stream`).  Two workloads:

* :func:`run_drift_recovery` -- stream a distribution shift (shifting
  cluster centers plus a rising noise floor,
  :func:`repro.datasets.drifting_dataset`) through a
  :class:`~repro.stream.StreamController` while reader threads hammer the
  served model, and measure (a) that not a single ``predict`` fails across
  the hot-swaps and (b) how close the re-tuned served model's noise-aware
  AMI on the shifted suite comes to a from-scratch ``AdaWave(scale="tune")``
  fit.
* :func:`run_retune_cost` -- time one incremental re-tune (the grid-pyramid
  sweep straight off the live sketch plus the model freeze and registry
  swap) against one fixed-scale fit over the same points; the sketch already
  holds the quantization, so the re-tune must cost well under a refit.

Both report rows through the shared :class:`ExperimentResult` machinery so
the benchmark layer can print them as tables, and assert nothing themselves.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Tuple

import numpy as np

from repro.core.adawave import AdaWave
from repro.datasets.synthetic import drifting_dataset, scaled_runtime_dataset
from repro.experiments.runner import ExperimentResult
from repro.metrics import ami_on_true_clusters
from repro.stream.controller import StreamController

#: The drifting stream quantizes against the unit square at every phase.
_DRIFT_BOUNDS = ([0.0, 0.0], [1.0, 1.0])


def _shuffled_batches(points: np.ndarray, n_batches: int, rng: np.random.Generator):
    """Split ``points`` into ``n_batches`` randomly interleaved batches.

    The generators emit clusters first and noise last; a live stream
    interleaves them, and the drift checks assume each batch is a fair draw
    from the current distribution.
    """
    permutation = rng.permutation(len(points))
    return [points[ix] for ix in np.array_split(permutation, n_batches)]


def run_drift_recovery(
    n_per_cluster: int = 1000,
    n_batches: int = 8,
    noise_range: Tuple[float, float] = (0.3, 0.75),
    shift: Tuple[float, float] = (0.15, 0.10),
    check_every: int = 2,
    window: Optional[int] = 8,
    decay: Optional[float] = None,
    reader_threads: int = 2,
    reader_chunk: int = 500,
    seed: int = 0,
) -> ExperimentResult:
    """Stream a distribution shift through the control plane and score recovery.

    Phase A streams the stationary workload (``phase=0``) and publishes the
    first model mid-phase; phase B streams the shifted, noisier workload
    (``phase=1``) while ``reader_threads`` threads continuously call
    ``service.predict`` against the serving name -- across every drift check,
    re-tune and blue/green swap.  Afterwards the served model and a
    from-scratch ``AdaWave(scale="tune")`` fit are both scored on a fresh
    draw of the shifted suite with the paper's noise-aware AMI.

    Metadata records ``failed_predicts`` (the hot-swap acceptance bar is 0),
    ``n_retunes``, ``recovery_ratio`` (served AMI over from-scratch AMI; the
    acceptance bar elsewhere is 0.95) and the drift-check history.
    """
    rng = np.random.default_rng(seed)
    phase_a = drifting_dataset(
        0.0, n_per_cluster=n_per_cluster, noise_range=noise_range, shift=shift,
        seed=seed,
    )
    phase_b = drifting_dataset(
        1.0, n_per_cluster=n_per_cluster, noise_range=noise_range, shift=shift,
        seed=seed + 1,
    )
    evaluation = drifting_dataset(
        1.0, n_per_cluster=n_per_cluster, noise_range=noise_range, shift=shift,
        seed=seed + 100,
    )

    result = ExperimentResult(
        experiment="E10: drift detection, incremental re-tune, hot-swap",
        columns=["stage", "n_seen", "stability", "noise_shift", "drifted", "version"],
        metadata={
            "n_per_cluster": n_per_cluster,
            "n_batches": n_batches,
            "noise_range": list(noise_range),
            "shift": list(shift),
            "check_every": check_every,
            "window": window,
            "decay": decay,
            "reader_threads": reader_threads,
            "seed": seed,
        },
    )

    controller = StreamController(
        "live",
        _DRIFT_BOUNDS,
        2,
        warmup=max(1, len(phase_a.points) // 2),
        check_every=check_every,
        window=window,
        decay=decay,
    )

    def _stream_phase(stage: str, points: np.ndarray, batch_seed_rng) -> None:
        for batch in _shuffled_batches(points, n_batches, batch_seed_rng):
            report = controller.ingest(batch)
            if report is not None:
                result.add_row(
                    stage=stage,
                    n_seen=report.n_seen,
                    stability=float(report.stability),
                    noise_shift=float(report.noise_shift),
                    drifted=bool(report.drifted),
                    version=controller.version_,
                )

    with controller:
        _stream_phase("phase A (stationary)", phase_a.points, rng)
        if controller.model_ is None:
            controller.retune()
        retunes_after_a = controller.n_retunes_

        # Readers hammer the serving name across every swap phase B causes.
        stop = threading.Event()
        failures: list = []
        served_counts = [0] * reader_threads

        def _reader(slot: int) -> None:
            chunk_rng = np.random.default_rng(seed + 1000 + slot)
            points = evaluation.points
            while not stop.is_set():
                start = int(chunk_rng.integers(0, max(1, len(points) - reader_chunk)))
                try:
                    labels = controller.predict(points[start : start + reader_chunk])
                    if labels.shape != (min(reader_chunk, len(points) - start),):
                        raise AssertionError("short predict result")
                except Exception as error:  # noqa: BLE001 - the metric is "any failure"
                    failures.append(error)
                    return
                served_counts[slot] += 1

        readers = [
            threading.Thread(target=_reader, args=(slot,), daemon=True)
            for slot in range(reader_threads)
        ]
        for thread in readers:
            thread.start()
        try:
            _stream_phase("phase B (shifted)", phase_b.points, rng)
        finally:
            stop.set()
            for thread in readers:
                thread.join()

        served_labels = controller.predict(evaluation.points)
        version = controller.version_
        n_retunes = controller.n_retunes_

    scratch = AdaWave(scale="tune").fit(evaluation.points)
    ami_served = ami_on_true_clusters(evaluation.labels, served_labels)
    ami_scratch = ami_on_true_clusters(evaluation.labels, scratch.labels_)

    result.metadata["failed_predicts"] = len(failures)
    result.metadata["reader_predicts"] = int(sum(served_counts))
    result.metadata["n_retunes"] = n_retunes
    result.metadata["retunes_in_phase_b"] = n_retunes - retunes_after_a
    result.metadata["final_version"] = version
    result.metadata["ami_served"] = float(ami_served)
    result.metadata["ami_scratch"] = float(ami_scratch)
    result.metadata["recovery_ratio"] = (
        float(ami_served / ami_scratch) if ami_scratch > 0 else 1.0
    )
    return result


def run_retune_cost(
    n_points: int = 100_000,
    base_scale: int = 128,
    noise_fraction: float = 0.75,
    seed: int = 0,
    repeats: int = 3,
) -> ExperimentResult:
    """Incremental re-tune cost vs one fixed-scale fit over the same points.

    The sketch is populated once (untimed); each timed re-tune then runs the
    grid-pyramid sweep straight off it, freezes the winner and swaps it into
    the registry -- no pass over the points.  The fixed fit re-quantizes the
    points every time.  Metadata carries ``retune_ratio`` (re-tune seconds
    over fixed-fit seconds); the benchmark floor asserts it stays <= 2.  A
    single drift check (:meth:`DriftMonitor.assess`) is timed as an
    informational row -- it is the operation the control plane runs every
    few batches.
    """
    dataset = scaled_runtime_dataset(n_points, noise_fraction=noise_fraction, seed=seed)
    points = dataset.points
    bounds = (points.min(axis=0), points.max(axis=0))

    def _best(fn) -> float:
        best = np.inf
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    seconds_fixed = _best(lambda: AdaWave(scale=base_scale, bounds=bounds).fit(points))

    controller = StreamController(
        "bench", bounds, 2, base_scale=base_scale, warmup=1
    )
    with controller:
        controller.ingest(points)  # populates the sketch and publishes v1
        seconds_retune = _best(controller.retune)
        seconds_check = _best(lambda: controller.monitor.assess(controller.sketch))
        n_versions = len(controller.service.registry.versions("bench"))

    result = ExperimentResult(
        experiment="E10: incremental re-tune cost",
        columns=["configuration", "seconds", "ratio_to_fixed"],
        metadata={
            "n_points": dataset.n_samples,
            "base_scale": base_scale,
            "noise_fraction": noise_fraction,
            "seed": seed,
            "retune_ratio": float(seconds_retune / max(seconds_fixed, 1e-9)),
            "check_ratio": float(seconds_check / max(seconds_fixed, 1e-9)),
            "n_versions": n_versions,
        },
    )
    result.add_row(
        configuration=f"fixed fit (scale={base_scale})",
        seconds=float(seconds_fixed), ratio_to_fixed=1.0,
    )
    result.add_row(
        configuration="incremental re-tune (sweep + freeze + swap)",
        seconds=float(seconds_retune),
        ratio_to_fixed=result.metadata["retune_ratio"],
    )
    result.add_row(
        configuration="drift check (DriftMonitor.assess)",
        seconds=float(seconds_check),
        ratio_to_fixed=result.metadata["check_ratio"],
    )
    return result
