"""E6 -- the runtime comparison of Fig. 10.

The paper scales the number of objects (noise fixed at 75 %) and measures
wall-clock time for AdaWave, SkinnyDip, k-means, DBSCAN and EM.  The expected
shape: AdaWave grows linearly and ranks second fastest behind SkinnyDip,
while the distance-based methods grow much faster.  Absolute times depend on
the machine and implementation language (the paper mixes Python, R and Java
implementations and explicitly compares only asymptotic trends), so this
experiment reports seconds per algorithm per size and the fitted growth
exponent ``time ~ n**exponent``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

from repro.baselines import DBSCAN, EMClustering, KMeans, SkinnyDip
from repro.core.adawave import AdaWave
from repro.datasets.synthetic import scaled_runtime_dataset
from repro.experiments.runner import ExperimentResult


def _fit_growth_exponent(sizes: Sequence[int], seconds: Sequence[float]) -> float:
    """Least-squares slope of log(time) against log(n)."""
    sizes_arr = np.asarray(sizes, dtype=np.float64)
    seconds_arr = np.maximum(np.asarray(seconds, dtype=np.float64), 1e-6)
    if len(sizes_arr) < 2:
        return 0.0
    design = np.vstack([np.log(sizes_arr), np.ones_like(sizes_arr)]).T
    slope, _intercept = np.linalg.lstsq(design, np.log(seconds_arr), rcond=None)[0]
    return float(slope)


def run_runtime_comparison(
    sizes: Sequence[int] = (2000, 4000, 8000, 16000),
    noise_fraction: float = 0.75,
    seed: int = 0,
    adawave_scale: int = 128,
    max_points_quadratic: int = 8000,
) -> ExperimentResult:
    """Regenerate the Fig. 10 runtime series.

    Returns one row per (algorithm, n) with the measured seconds, plus one
    summary row per algorithm with the fitted growth exponent.  Quadratic
    algorithms are skipped above ``max_points_quadratic`` so the experiment
    finishes in reasonable time; the skip itself reproduces the paper's point
    that they do not scale.
    """
    algorithms = {
        "AdaWave": lambda k: AdaWave(scale=adawave_scale),
        "SkinnyDip": lambda k: SkinnyDip(alpha=0.05, n_boot=50),
        "k-means": lambda k: KMeans(n_clusters=k, n_init=3, random_state=seed),
        "EM": lambda k: EMClustering(n_components=k, random_state=seed, max_iter=50),
        "DBSCAN": lambda k: DBSCAN(eps=0.05, min_samples=8),
    }
    quadratic = {"DBSCAN", "EM"}

    result = ExperimentResult(
        experiment="E6: runtime comparison (Fig. 10)",
        columns=["algorithm", "n", "seconds"],
        metadata={
            "sizes": list(sizes),
            "noise_fraction": noise_fraction,
            "seed": seed,
            "paper_reference": "AdaWave linear, second fastest after SkinnyDip",
        },
    )
    timings: Dict[str, List[float]] = {name: [] for name in algorithms}
    measured_sizes: Dict[str, List[int]] = {name: [] for name in algorithms}

    for n_total in sizes:
        dataset = scaled_runtime_dataset(n_total, noise_fraction=noise_fraction, seed=seed)
        true_k = max(dataset.n_clusters, 1)
        for name, factory in algorithms.items():
            if name in quadratic and dataset.n_samples > max_points_quadratic:
                continue
            estimator = factory(true_k)
            start = time.perf_counter()
            estimator.fit_predict(dataset.points)
            elapsed = time.perf_counter() - start
            result.add_row(algorithm=name, n=dataset.n_samples, seconds=float(elapsed))
            timings[name].append(float(elapsed))
            measured_sizes[name].append(dataset.n_samples)

    for name in algorithms:
        if len(timings[name]) >= 2:
            exponent = _fit_growth_exponent(measured_sizes[name], timings[name])
            result.add_row(algorithm=f"{name} (growth exponent)", n=None, seconds=exponent)
    return result


def run_engine_speedup(
    n_points: int = 100_000,
    scale: int = 128,
    noise_fraction: float = 0.75,
    seed: int = 0,
    repeats: int = 1,
) -> ExperimentResult:
    """Head-to-head runtime of the vectorized and reference AdaWave engines.

    Both engines run the identical pipeline (same grid, transform, threshold
    and labeling semantics -- the golden-regression tests pin that down), so
    the ratio isolates the cost of the per-cell Python data structures the
    vectorized engine replaced.  Reports one row per engine with the best
    wall-clock over ``repeats`` runs, plus a ``speedup`` summary row, and
    asserts nothing itself -- the benchmark layer does.
    """
    from repro.engine.reference import fit_reference

    dataset = scaled_runtime_dataset(n_points, noise_fraction=noise_fraction, seed=seed)
    result = ExperimentResult(
        experiment="engine speedup: vectorized vs reference",
        columns=["engine", "n", "seconds"],
        metadata={
            "n_points": dataset.n_samples,
            "scale": scale,
            "noise_fraction": noise_fraction,
            "seed": seed,
        },
    )
    runners = {
        "vectorized": lambda: AdaWave(scale=scale).fit_predict(dataset.points),
        "reference": lambda: fit_reference(dataset.points, scale=scale).labels,
    }
    seconds: Dict[str, float] = {}
    labels: Dict[str, np.ndarray] = {}
    for engine, runner in runners.items():
        best = np.inf
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            labels[engine] = runner()
            best = min(best, time.perf_counter() - start)
        seconds[engine] = best
        result.add_row(engine=engine, n=dataset.n_samples, seconds=float(best))
    result.metadata["labels_identical"] = bool(
        np.array_equal(labels["vectorized"], labels["reference"])
    )
    result.add_row(
        engine="speedup (reference / vectorized)",
        n=None,
        seconds=float(seconds["reference"] / max(seconds["vectorized"], 1e-9)),
    )
    return result


def run_backend_speedup(
    n_points: int = 100_000,
    scale: int = 128,
    wavelet: str = "bior2.2",
    noise_fraction: float = 0.75,
    seed: int = 0,
    repeats: int = 10,
) -> ExperimentResult:
    """Transform-stage kernel time per registered backend at the acceptance size.

    Quantizes the n = 100k acceptance dataset once, extracts the real line
    matrix the fit would transform, and times every registered backend's
    ``approx_batch`` against the full ``dwt_batch`` (both halves) it replaces.
    Also fits the estimator end to end per backend so the whole-fit wall clock
    and label agreement land in the same report.  Reports one ``transform``
    row per backend (best of ``repeats`` x a small inner loop), one ``fit``
    row per backend, and one ``speedup vs dwt_batch`` summary row per backend;
    asserts nothing itself -- the benchmark layer does.
    """
    from repro.grid.quantizer import GridQuantizer
    from repro.wavelets.backends import available_backends, get_backend
    from repro.wavelets.dwt import dwt_batch

    dataset = scaled_runtime_dataset(n_points, noise_fraction=noise_fraction, seed=seed)
    quantized = GridQuantizer(scale=scale).fit(dataset.points).quantize(dataset.points)
    _keys, matrix = quantized.grid.line_matrix(0)
    matrix = np.ascontiguousarray(matrix)

    result = ExperimentResult(
        experiment="backend speedup: lifting vs numpy reference",
        columns=["backend", "stage", "seconds"],
        metadata={
            "n_points": dataset.n_samples,
            "scale": scale,
            "wavelet": wavelet,
            "line_matrix_shape": list(matrix.shape),
            "seed": seed,
        },
    )

    inner = 5  # kernel calls per timing sample; the matrix transforms in ~100us

    def _best_of(call) -> float:
        best = np.inf
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            for _ in range(inner):
                call()
            best = min(best, (time.perf_counter() - start) / inner)
        return float(best)

    baseline = _best_of(lambda: dwt_batch(matrix, wavelet))
    result.add_row(backend="dwt_batch (full)", stage="transform", seconds=baseline)

    kernel_seconds: Dict[str, float] = {}
    backends = [
        name
        for name in available_backends()
        if get_backend(name).supports(wavelet)
    ]
    for name in backends:
        backend = get_backend(name)
        kernel_seconds[name] = _best_of(lambda: backend.approx_batch(matrix, wavelet))
        result.add_row(backend=name, stage="transform", seconds=kernel_seconds[name])

    labels: Dict[str, np.ndarray] = {}
    for name in backends:
        estimator = AdaWave(scale=scale, wavelet=wavelet, backend=name)
        start = time.perf_counter()
        labels[name] = estimator.fit_predict(dataset.points)
        result.add_row(
            backend=name, stage="fit", seconds=float(time.perf_counter() - start)
        )

    result.metadata["labels_identical"] = {
        name: bool(np.array_equal(labels[name], labels["numpy"]))
        for name in backends
        if name != "numpy"
    }
    for name in backends:
        result.add_row(
            backend=name,
            stage="speedup vs dwt_batch",
            seconds=float(baseline / max(kernel_seconds[name], 1e-12)),
        )
    return result
