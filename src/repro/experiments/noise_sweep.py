"""E2 -- the noise sweep of Fig. 7 / Fig. 8.

The paper varies the uniform noise percentage gamma over {20, 25, ..., 90} on
the five-cluster synthetic dataset and plots the AMI of AdaWave, SkinnyDip,
DBSCAN, EM, k-means and WaveCluster.  The expected shape: AdaWave dominates
at every noise level and degrades slowly (still ~0.55 at 90 % noise); DBSCAN
is competitive only at 20 % noise and collapses above ~60 %; the remaining
baselines hover much lower.
"""

from __future__ import annotations

from typing import Sequence

from repro.datasets.synthetic import noise_sweep_dataset
from repro.experiments.runner import ExperimentResult, default_algorithms, evaluate_algorithm


def run_noise_sweep(
    noise_levels: Sequence[float] = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    n_per_cluster: int = 5600,
    seed: int = 0,
    adawave_scale: int = 128,
    subsample_quadratic: int = 3000,
) -> ExperimentResult:
    """Regenerate the Fig. 8 AMI-versus-noise curves.

    Returns a long-format result with one row per (noise level, algorithm);
    use :func:`repro.experiments.reporting.pivot` to lay it out like the
    figure.
    """
    result = ExperimentResult(
        experiment="E2: noise sweep (Fig. 7 / Fig. 8)",
        columns=["noise", "algorithm", "ami", "n_clusters", "seconds"],
        metadata={
            "noise_levels": list(noise_levels),
            "n_per_cluster": n_per_cluster,
            "seed": seed,
            "paper_reference": "AdaWave dominates at every gamma; ~0.55 AMI at 90% noise",
        },
    )
    specs = default_algorithms(
        include_slow=False,
        adawave_scale=adawave_scale,
        subsample_quadratic=subsample_quadratic,
        random_state=seed,
    )
    for noise in noise_levels:
        dataset = noise_sweep_dataset(
            noise_fraction=noise, n_per_cluster=n_per_cluster, seed=seed
        )
        for spec in specs:
            row = evaluate_algorithm(spec, dataset)
            result.add_row(
                noise=noise,
                algorithm=row["algorithm"],
                ami=row["ami"],
                n_clusters=row["n_clusters"],
                seconds=row["seconds"],
            )
    return result
