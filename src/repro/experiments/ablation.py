"""E7 -- ablations of AdaWave's design choices.

The paper motivates three design decisions that this experiment quantifies on
the noise-sweep workload:

* the *adaptive* threshold (elbow rule) versus WaveCluster's fixed percentile
  and versus no threshold filtering at all;
* the sparse "grid labeling" structure versus a dense grid, measured as the
  number of stored cells;
* the choice of wavelet basis (the paper defaults to CDF(2,2) but advertises
  the flexibility of choosing any basis).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.adawave import AdaWave
from repro.datasets.synthetic import noise_sweep_dataset
from repro.experiments.runner import ExperimentResult
from repro.grid.quantizer import GridQuantizer
from repro.metrics import ami_on_true_clusters


def run_threshold_ablation(
    noise_levels: Sequence[float] = (0.3, 0.6, 0.9),
    n_per_cluster: int = 2800,
    seed: int = 0,
    scale: int = 128,
) -> ExperimentResult:
    """Compare the threshold selection rules across noise levels."""
    methods = ("auto", "segments", "distance", "angle", "none")
    result = ExperimentResult(
        experiment="E7a: threshold rule ablation",
        columns=["noise", "threshold_method", "ami", "n_clusters", "threshold"],
        metadata={"noise_levels": list(noise_levels), "seed": seed, "scale": scale},
    )
    for noise in noise_levels:
        dataset = noise_sweep_dataset(noise_fraction=noise, n_per_cluster=n_per_cluster, seed=seed)
        for method in methods:
            model = AdaWave(scale=scale, threshold_method=method)
            try:
                model.fit(dataset.points)
            except RuntimeError:
                # The literal angle rule may not trigger on every curve.
                result.add_row(
                    noise=noise, threshold_method=method, ami=None, n_clusters=None, threshold=None
                )
                continue
            result.add_row(
                noise=noise,
                threshold_method=method,
                ami=ami_on_true_clusters(dataset.labels, model.labels_),
                n_clusters=model.n_clusters_,
                threshold=model.threshold_,
            )
    return result


def run_memory_ablation(
    dimensions: Sequence[int] = (2, 4, 6, 8, 10),
    n_samples: int = 5000,
    scale: int = 16,
    seed: int = 0,
) -> ExperimentResult:
    """Sparse "grid labeling" versus dense grid storage as dimension grows.

    For every dimensionality the same Gaussian-mixture data is quantized and
    the number of stored cells is compared with the ``scale ** d`` cells a
    dense grid would need -- the paper's memory argument for grid labeling.
    """
    import numpy as np

    from repro.utils.validation import check_random_state

    result = ExperimentResult(
        experiment="E7b: sparse grid memory ablation",
        columns=["dimension", "occupied_cells", "dense_cells", "savings_factor"],
        metadata={"n_samples": n_samples, "scale": scale, "seed": seed},
    )
    rng = check_random_state(seed)
    for dimension in dimensions:
        centers = rng.normal(scale=3.0, size=(4, dimension))
        assignments = rng.integers(0, 4, size=n_samples)
        points = centers[assignments] + rng.normal(size=(n_samples, dimension))
        quantization = GridQuantizer(scale=scale).fit_transform(points)
        occupied = quantization.grid.memory_cells()
        dense = quantization.grid.n_total_cells
        result.add_row(
            dimension=dimension,
            occupied_cells=occupied,
            dense_cells=dense,
            savings_factor=float(dense / max(occupied, 1)),
        )
    return result


def run_wavelet_ablation(
    wavelets: Sequence[str] = ("bior2.2", "haar", "db2", "db4", "sym4", "bior1.3"),
    noise_fraction: float = 0.75,
    n_per_cluster: int = 2800,
    seed: int = 0,
    scale: int = 128,
) -> ExperimentResult:
    """AMI of AdaWave under different wavelet bases (flexibility property)."""
    dataset = noise_sweep_dataset(
        noise_fraction=noise_fraction, n_per_cluster=n_per_cluster, seed=seed
    )
    result = ExperimentResult(
        experiment="E7c: wavelet basis ablation",
        columns=["wavelet", "ami", "n_clusters", "threshold"],
        metadata={"noise_fraction": noise_fraction, "seed": seed, "scale": scale},
    )
    for wavelet in wavelets:
        model = AdaWave(scale=scale, wavelet=wavelet).fit(dataset.points)
        result.add_row(
            wavelet=wavelet,
            ami=ami_on_true_clusters(dataset.labels, model.labels_),
            n_clusters=model.n_clusters_,
            threshold=model.threshold_,
        )
    return result
