"""Plain-text table rendering for the experiment results."""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.experiments.runner import ExperimentResult


def _format_value(value, float_format: str) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def format_table(
    result: ExperimentResult,
    *,
    columns: Optional[Iterable[str]] = None,
    float_format: str = "{:.3f}",
    title: Optional[str] = None,
) -> str:
    """Render an :class:`ExperimentResult` as an aligned plain-text table.

    Parameters
    ----------
    result:
        Experiment output to render.
    columns:
        Optional subset / ordering of columns; defaults to the experiment's
        declared column list.
    float_format:
        Format string applied to floating point cells.
    title:
        Optional heading printed above the table.
    """
    column_names: List[str] = list(columns) if columns is not None else list(result.columns)
    header = [name for name in column_names]
    body = [
        [_format_value(row.get(name), float_format) for name in column_names]
        for row in result.rows
    ]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(header))
    ]

    def render_line(cells: List[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    elif result.experiment:
        lines.append(result.experiment)
    lines.append(render_line(header))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_line(line) for line in body)
    return "\n".join(lines)


def pivot(result: ExperimentResult, index: str, column: str, value: str) -> ExperimentResult:
    """Pivot long-format rows into a wide table (e.g. noise level x algorithm)."""
    index_values = []
    column_values = []
    for row in result.rows:
        if row.get(index) not in index_values:
            index_values.append(row.get(index))
        if row.get(column) not in column_values:
            column_values.append(row.get(column))

    pivoted = ExperimentResult(
        experiment=result.experiment,
        columns=[index] + [str(c) for c in column_values],
        metadata=dict(result.metadata),
    )
    for index_value in index_values:
        row_out = {index: index_value}
        for column_value in column_values:
            row_out[str(column_value)] = None
            for row in result.rows:
                if row.get(index) == index_value and row.get(column) == column_value:
                    row_out[str(column_value)] = row.get(value)
                    break
        pivoted.add_row(**row_out)
    return pivoted
