"""E4 -- Table II: per-attribute correlation with the class on Glass.

Table II lists the Pearson correlation of each of the nine Glass attributes
with the class label, documenting why per-dimension methods struggle on that
dataset (most attributes correlate weakly with the class).  The Glass
simulant is constructed to match those correlations, and this experiment
recomputes them from the generated data so the reproduction can be checked
end to end.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.uci_like import GLASS_ATTRIBUTE_CORRELATIONS, glass_simulant
from repro.experiments.runner import ExperimentResult


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient of two equal-length vectors."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same shape.")
    x_centered = x - x.mean()
    y_centered = y - y.mean()
    denominator = np.sqrt((x_centered**2).sum() * (y_centered**2).sum())
    if denominator <= 0:
        return 0.0
    return float((x_centered * y_centered).sum() / denominator)


def run_glass_correlation(seed: int = 0, n_samples: int = 214) -> ExperimentResult:
    """Regenerate Table II from the Glass simulant.

    Each row reports the attribute name, the correlation measured in the
    generated data and the paper's reference value.
    """
    dataset = glass_simulant(seed=seed, n_samples=n_samples)
    result = ExperimentResult(
        experiment="E4: Glass attribute correlations (Table II)",
        columns=["attribute", "measured_correlation", "paper_correlation", "absolute_error"],
        metadata={"seed": seed, "n_samples": n_samples},
    )
    for column_index, (attribute, reference) in enumerate(GLASS_ATTRIBUTE_CORRELATIONS.items()):
        measured = pearson_correlation(dataset.points[:, column_index], dataset.labels)
        result.add_row(
            attribute=attribute,
            measured_correlation=measured,
            paper_correlation=reference,
            absolute_error=abs(measured - reference),
        )
    return result
