"""E8 -- serving-layer performance: predict throughput and parallel ingestion.

Not a paper artefact: this experiment characterises the repo's serving
extensions (ROADMAP items).  Two workloads:

* :func:`run_predict_throughput` -- freeze a fitted model into a
  :class:`~repro.serve.ClusterModel`, round-trip it through ``save``/``load``
  and measure lookup-only ``predict`` over a large query set, verifying the
  served labels match the one-shot fit exactly.
* :func:`run_parallel_ingest` -- compare serial streaming ingestion against
  :func:`~repro.serve.parallel_ingest` at several worker counts, verifying
  every configuration predicts identical labels (grid merging is exact, not
  approximate).
* :func:`run_procpool_throughput` -- drive identical concurrent predict
  traffic through a single-process :class:`~repro.serve.ClusteringService`
  (whose per-model micro-batch leader serializes at one core) and through a
  :class:`~repro.serve.ProcessPoolService` worker pool, reporting aggregate
  throughput and the procpool speedup, and verifying the pooled labels are
  bit-for-bit the single-process labels.
* :func:`run_shm_throughput` -- the same pooled traffic with the
  shared-memory slab rings on and off, isolating what the zero-copy data
  plane buys over pickling every batch through the worker queues.

All report rows through the shared :class:`ExperimentResult` machinery so
the benchmark layer can print them as tables, and assert nothing themselves.
"""

from __future__ import annotations

import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

import numpy as np

from repro.core.adawave import AdaWave
from repro.datasets.synthetic import scaled_runtime_dataset
from repro.experiments.runner import ExperimentResult
from repro.serve.model import ClusterModel
from repro.serve.parallel import _ingest_shard, parallel_ingest, resolve_n_workers
from repro.serve.procpool import ProcessPoolService
from repro.serve.service import ClusteringService


def run_predict_throughput(
    n_train: int = 50_000,
    n_queries: int = 200_000,
    scale: int = 128,
    noise_fraction: float = 0.75,
    seed: int = 0,
    repeats: int = 3,
    save_path=None,
) -> ExperimentResult:
    """Throughput of the frozen-artifact serving path.

    Fits once, freezes, optionally round-trips the artifact through disk
    (``save_path``), then times ``predict`` over a fresh query set (best of
    ``repeats``).  Metadata records whether the served labels reproduce the
    training labels bit-for-bit and the artifact's resident cell count --
    the number that stays flat as ``n_train`` grows.
    """
    train = scaled_runtime_dataset(n_train, noise_fraction=noise_fraction, seed=seed)
    queries = scaled_runtime_dataset(
        n_queries, noise_fraction=noise_fraction, seed=seed + 1
    ).points

    result = ExperimentResult(
        experiment="serving: frozen-model predict throughput",
        columns=["stage", "n", "seconds", "points_per_sec"],
        metadata={
            "n_train": train.n_samples,
            "n_queries": len(queries),
            "scale": scale,
            "seed": seed,
        },
    )

    start = time.perf_counter()
    estimator = AdaWave(scale=scale).fit(train.points)
    fit_seconds = time.perf_counter() - start
    result.add_row(
        stage="fit", n=train.n_samples, seconds=float(fit_seconds),
        points_per_sec=float(train.n_samples / max(fit_seconds, 1e-9)),
    )

    model = estimator.export_model()
    if save_path is not None:
        model.save(save_path)
        model = ClusterModel.load(save_path)

    best = np.inf
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        labels = model.predict(queries)
        best = min(best, time.perf_counter() - start)
    result.add_row(
        stage="predict", n=len(queries), seconds=float(best),
        points_per_sec=float(len(queries) / max(best, 1e-9)),
    )

    result.metadata["labels_match"] = bool(
        np.array_equal(model.predict(train.points), estimator.labels_)
    )
    result.metadata["model_cells"] = model.n_cells
    result.metadata["n_clusters"] = model.n_clusters
    result.metadata["predicted_noise_fraction"] = float(np.mean(labels == -1))
    return result


def run_parallel_ingest(
    n_points: int = 200_000,
    n_batches: int = 32,
    workers: Sequence[int] = (1, 2, 4),
    scale: int = 128,
    noise_fraction: float = 0.75,
    seed: int = 0,
    repeats: int = 3,
    executor: str = "thread",
) -> ExperimentResult:
    """Serial vs sharded-parallel streaming ingestion at ``n_points``.

    Times the ingestion phase -- quantize, accumulate, consolidate the
    sketch, everything up to (but excluding) the shared ``finalize``
    pipeline -- serially and through :func:`parallel_ingest` at each worker
    count, best of ``repeats``.  One ``speedup`` row per worker count
    reports ``serial_seconds / parallel_seconds``; metadata records whether
    all configurations predict identical labels.
    """
    dataset = scaled_runtime_dataset(n_points, noise_fraction=noise_fraction, seed=seed)
    points = dataset.points
    bounds = (points.min(axis=0), points.max(axis=0))
    batches = np.array_split(points, n_batches)
    params = dict(scale=scale, bounds=bounds, lookup_only=True)

    result = ExperimentResult(
        experiment=f"serving: parallel ingestion ({executor} executor)",
        columns=["configuration", "workers", "seconds", "speedup"],
        metadata={
            "n_points": dataset.n_samples,
            "n_batches": n_batches,
            "scale": scale,
            "seed": seed,
            "executor": executor,
        },
    )

    serial_best = np.inf
    serial_model: Optional[AdaWave] = None
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        serial_model = _ingest_shard(params, list(batches))
        serial_best = min(serial_best, time.perf_counter() - start)
    serial_model.finalize()
    reference_labels = serial_model.predict(points)
    result.add_row(
        configuration="serial", workers=1, seconds=float(serial_best), speedup=1.0
    )

    all_identical = True
    for n_workers in workers:
        if n_workers <= 1:
            continue
        best = np.inf
        model: Optional[AdaWave] = None
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            model = parallel_ingest(
                batches,
                bounds=bounds,
                scale=scale,
                n_workers=n_workers,
                executor=executor,
                finalize=False,
            )
            # Force the merged sketch consolidation inside the timed region
            # so serial and parallel pay for identical work.
            model._sketch.grid.n_occupied
            best = min(best, time.perf_counter() - start)
        model.finalize()
        identical = bool(np.array_equal(model.predict(points), reference_labels))
        all_identical = all_identical and identical
        result.add_row(
            configuration=f"parallel x{n_workers}",
            workers=n_workers,
            seconds=float(best),
            speedup=float(serial_best / max(best, 1e-9)),
        )

    result.metadata["labels_identical"] = all_identical
    result.metadata["n_clusters"] = serial_model.n_clusters_
    return result


def _drive_concurrent(predict, requests: List[np.ndarray], n_threads: int) -> float:
    """Wall seconds to answer every request from ``n_threads`` caller threads."""
    with ThreadPoolExecutor(max_workers=n_threads) as callers:
        start = time.perf_counter()
        futures = [callers.submit(predict, X) for X in requests]
        for future in futures:
            future.result()
        return time.perf_counter() - start


def run_procpool_throughput(
    n_train: int = 20_000,
    n_queries: int = 200_000,
    n_requests: int = 64,
    n_workers: int = 2,
    n_threads: int = 4,
    scale: int = 128,
    noise_fraction: float = 0.75,
    seed: int = 0,
    repeats: int = 3,
    store_dir=None,
    mp_context: str = "spawn",
) -> ExperimentResult:
    """Aggregate predict throughput: single-process service vs process pool.

    One frozen model serves ``n_requests`` query batches (``n_queries``
    points total) submitted concurrently from ``n_threads`` caller threads,
    first through a plain :class:`ClusteringService` -- where the per-model
    micro-batch leader serializes every pass onto one core -- then through a
    :class:`ProcessPoolService` with ``n_workers`` worker processes over a
    shared artifact store.  Each configuration is warmed once and timed
    ``repeats`` times (best taken).  Metadata records whether every pooled
    answer matched the frozen model bit-for-bit.
    """
    train = scaled_runtime_dataset(n_train, noise_fraction=noise_fraction, seed=seed)
    queries = scaled_runtime_dataset(
        n_queries, noise_fraction=noise_fraction, seed=seed + 1
    ).points
    frozen = AdaWave(scale=scale).fit(train.points).export_model()
    requests = np.array_split(queries, n_requests)
    expected = [frozen.predict(X) for X in requests]

    result = ExperimentResult(
        experiment="serving: multi-process predict throughput",
        columns=["configuration", "workers", "seconds", "points_per_sec", "speedup"],
        metadata={
            "n_train": train.n_samples,
            "n_queries": len(queries),
            "n_requests": n_requests,
            "n_threads": n_threads,
            "scale": scale,
            "seed": seed,
        },
    )

    labels_match = True

    def _measure(service) -> float:
        nonlocal labels_match
        answers = [service.predict("live", X) for X in requests[: n_threads]]
        labels_match = labels_match and all(
            np.array_equal(got, want) for got, want in zip(answers, expected)
        )
        best = np.inf
        for _ in range(max(repeats, 1)):
            best = min(
                best,
                _drive_concurrent(
                    lambda X: service.predict("live", X), requests, n_threads
                ),
            )
        final = [service.predict("live", X) for X in requests]
        labels_match = labels_match and all(
            np.array_equal(got, want) for got, want in zip(final, expected)
        )
        return best

    with ClusteringService() as single:
        single.register("live", frozen)
        single_seconds = _measure(single)
    result.add_row(
        configuration="single-process", workers=1, seconds=float(single_seconds),
        points_per_sec=float(len(queries) / max(single_seconds, 1e-9)), speedup=1.0,
    )

    cleanup = None
    if store_dir is None:
        cleanup = tempfile.TemporaryDirectory()
        store_dir = cleanup.name
    try:
        with ProcessPoolService(
            store_dir, n_workers=n_workers, mp_context=mp_context
        ) as pooled:
            pooled.register("live", frozen)
            pooled_seconds = _measure(pooled)
            workers_alive = all(pooled.pool.alive())
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    result.add_row(
        configuration=f"procpool x{n_workers}", workers=n_workers,
        seconds=float(pooled_seconds),
        points_per_sec=float(len(queries) / max(pooled_seconds, 1e-9)),
        speedup=float(single_seconds / max(pooled_seconds, 1e-9)),
    )

    result.metadata["labels_match"] = bool(labels_match)
    result.metadata["workers_alive"] = bool(workers_alive)
    result.metadata["model_cells"] = frozen.n_cells
    return result


def run_shm_throughput(
    n_train: int = 20_000,
    n_queries: int = 200_000,
    n_requests: int = 64,
    n_workers: int = 2,
    n_threads: int = 4,
    scale: int = 128,
    noise_fraction: float = 0.75,
    seed: int = 0,
    repeats: int = 3,
    store_dir=None,
    mp_context: str = "spawn",
) -> ExperimentResult:
    """Shared-memory vs pickle-queue data plane at identical pooled traffic.

    Two :class:`ProcessPoolService` instances serve the same frozen model
    and the same ``n_requests`` concurrent query batches -- one shipping
    batches through the per-worker shared-memory slab rings
    (:mod:`repro.serve.shm`), one forced onto the pickle-queue path
    (``use_shm=False``).  Each configuration is warmed once and timed
    ``repeats`` times (best taken).  The ``speedup`` column of the shm row
    is pickle-seconds / shm-seconds; metadata records that both paths
    answered bit-for-bit identically and how many sends actually rode each
    path (the comparison is vacuous if the ring never engaged).
    """
    train = scaled_runtime_dataset(n_train, noise_fraction=noise_fraction, seed=seed)
    queries = scaled_runtime_dataset(
        n_queries, noise_fraction=noise_fraction, seed=seed + 1
    ).points
    frozen = AdaWave(scale=scale).fit(train.points).export_model()
    requests = np.array_split(queries, n_requests)
    expected = [frozen.predict(X) for X in requests]

    result = ExperimentResult(
        experiment="serving: shared-memory vs pickle-queue data plane",
        columns=["configuration", "workers", "seconds", "points_per_sec", "speedup"],
        metadata={
            "n_train": train.n_samples,
            "n_queries": len(queries),
            "n_requests": n_requests,
            "n_threads": n_threads,
            "n_workers": n_workers,
            "scale": scale,
            "seed": seed,
        },
    )

    labels_match = True

    def _measure(service) -> float:
        nonlocal labels_match
        warm = [service.predict("live", X) for X in requests[:n_threads]]
        labels_match = labels_match and all(
            np.array_equal(got, want) for got, want in zip(warm, expected)
        )
        best = np.inf
        for _ in range(max(repeats, 1)):
            best = min(
                best,
                _drive_concurrent(
                    lambda X: service.predict("live", X), requests, n_threads
                ),
            )
        final = [service.predict("live", X) for X in requests]
        labels_match = labels_match and all(
            np.array_equal(got, want) for got, want in zip(final, expected)
        )
        return best

    timings = {}
    sends = {}
    cleanup = None
    if store_dir is None:
        cleanup = tempfile.TemporaryDirectory()
        store_dir = cleanup.name
    try:
        for label, use_shm in (("pickle-queue", False), ("shm-ring", True)):
            with ProcessPoolService(
                f"{store_dir}/{label}",
                n_workers=n_workers,
                mp_context=mp_context,
                use_shm=use_shm,
            ) as service:
                service.register("live", frozen)
                timings[label] = _measure(service)
                sends[label] = (service.pool.shm_sends, service.pool.pickle_sends)
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    pickle_seconds = timings["pickle-queue"]
    for label in ("pickle-queue", "shm-ring"):
        seconds = timings[label]
        result.add_row(
            configuration=label,
            workers=n_workers,
            seconds=float(seconds),
            points_per_sec=float(len(queries) / max(seconds, 1e-9)),
            speedup=float(pickle_seconds / max(seconds, 1e-9)),
        )

    result.metadata["labels_match"] = bool(labels_match)
    result.metadata["shm_sends"] = int(sends["shm-ring"][0])
    result.metadata["pickle_fallback_sends"] = int(sends["shm-ring"][1])
    result.metadata["queue_path_sends"] = int(sends["pickle-queue"][1])
    result.metadata["model_cells"] = frozen.n_cells
    return result


def run_tracing_overhead(
    n_train: int = 20_000,
    n_queries: int = 200_000,
    n_requests: int = 32,
    n_threads: Optional[int] = None,
    scale: int = 128,
    noise_fraction: float = 0.75,
    seed: int = 0,
    repeats: int = 3,
) -> ExperimentResult:
    """Cost of per-request tracing on the in-process serving path.

    Drives identical concurrent predict traffic through two
    :class:`ClusteringService` instances serving the same frozen model --
    one with tracing on (the default: every request gets a trace, stage
    spans and a slow-ring candidate entry), one constructed with
    ``tracing=False`` -- and reports both throughputs plus their ratio.
    Each configuration is warmed once and timed ``repeats`` times (best
    taken).  The ``relative`` column of the traced row is
    traced-points-per-sec / untraced-points-per-sec, the number the
    benchmark floor pins: observability must stay a rounding error, not a
    tax on the serving plane.

    ``n_threads=None`` caps the caller threads at the host CPU count:
    oversubscribing a small box turns the measurement into GIL-scheduling
    noise that swamps the microseconds under test.
    """
    if n_threads is None:
        n_threads = min(4, resolve_n_workers(None))
    train = scaled_runtime_dataset(n_train, noise_fraction=noise_fraction, seed=seed)
    queries = scaled_runtime_dataset(
        n_queries, noise_fraction=noise_fraction, seed=seed + 1
    ).points
    frozen = AdaWave(scale=scale).fit(train.points).export_model()
    requests = np.array_split(queries, n_requests)
    expected = [frozen.predict(X) for X in requests]

    result = ExperimentResult(
        experiment="serving: tracing overhead on in-process predict",
        columns=["configuration", "seconds", "points_per_sec", "relative"],
        metadata={
            "n_train": train.n_samples,
            "n_queries": len(queries),
            "n_requests": n_requests,
            "n_threads": n_threads,
            "scale": scale,
            "seed": seed,
        },
    )

    labels_match = True
    timings = {"untraced": np.inf, "traced": np.inf}
    services = {
        "untraced": ClusteringService(tracing=False),
        "traced": ClusteringService(tracing=True),
    }
    try:
        for label, service in services.items():
            service.register("live", frozen)
            warm = [service.predict("live", X) for X in requests[:n_threads]]
            labels_match = labels_match and all(
                np.array_equal(got, want) for got, want in zip(warm, expected)
            )
        # The configurations alternate within every repeat so slow system
        # noise (CPU frequency, cache state, co-tenants) hits both equally
        # instead of biasing whichever ran second.
        for _ in range(max(repeats, 1)):
            for label, service in services.items():
                timings[label] = min(
                    timings[label],
                    _drive_concurrent(
                        lambda X: service.predict("live", X), requests, n_threads
                    ),
                )
        traced_snapshot = services["traced"].telemetry.snapshot()
    finally:
        for service in services.values():
            service.close()

    untraced_pps = len(queries) / max(timings["untraced"], 1e-9)
    for label in ("untraced", "traced"):
        seconds = timings[label]
        pps = len(queries) / max(seconds, 1e-9)
        result.add_row(
            configuration=label,
            seconds=float(seconds),
            points_per_sec=float(pps),
            relative=float(pps / max(untraced_pps, 1e-9)),
        )

    result.metadata["labels_match"] = bool(labels_match)
    result.metadata["traced_requests"] = int(
        traced_snapshot["traces"]["count"] if traced_snapshot else 0
    )
    result.metadata["stages_observed"] = sorted(
        traced_snapshot["stages"].keys() if traced_snapshot else []
    )
    result.metadata["model_cells"] = frozen.n_cells
    return result


def run_monitoring_overhead(
    n_train: int = 20_000,
    n_queries: int = 200_000,
    n_requests: int = 32,
    n_threads: Optional[int] = None,
    scale: int = 128,
    noise_fraction: float = 0.75,
    seed: int = 0,
    repeats: int = 3,
    monitor_interval: float = 0.1,
) -> ExperimentResult:
    """Cost of the continuous monitoring plane on in-process serving.

    Drives identical concurrent predict traffic through two
    :class:`ClusteringService` instances serving the same frozen model --
    one bare, one with a running :class:`~repro.obs.sysmon.SystemMonitor`
    (time-series rollups, /proc CPU+RSS sampling and SLO evaluation every
    ``monitor_interval`` seconds; the profiler stays off, as in
    production).  Each configuration is warmed once and timed ``repeats``
    times (best taken), with the configurations alternating inside every
    repeat so system noise hits both equally.  The ``relative`` column of
    the monitored row is monitored / unmonitored points-per-sec -- the
    number the benchmark floor pins: watching the service must cost a
    rounding error, not throughput.
    """
    from repro.obs.slo import Objective, SloMonitor
    from repro.obs.sysmon import SystemMonitor

    if n_threads is None:
        n_threads = min(4, resolve_n_workers(None))
    train = scaled_runtime_dataset(n_train, noise_fraction=noise_fraction, seed=seed)
    queries = scaled_runtime_dataset(
        n_queries, noise_fraction=noise_fraction, seed=seed + 1
    ).points
    frozen = AdaWave(scale=scale).fit(train.points).export_model()
    requests = np.array_split(queries, n_requests)
    expected = [frozen.predict(X) for X in requests]

    result = ExperimentResult(
        experiment="serving: monitoring overhead on in-process predict",
        columns=["configuration", "seconds", "points_per_sec", "relative"],
        metadata={
            "n_train": train.n_samples,
            "n_queries": len(queries),
            "n_requests": n_requests,
            "n_threads": n_threads,
            "scale": scale,
            "seed": seed,
            "monitor_interval": monitor_interval,
        },
    )

    labels_match = True
    timings = {"unmonitored": np.inf, "monitored": np.inf}
    services = {
        "unmonitored": ClusteringService(),
        "monitored": ClusteringService(),
    }
    monitored = services["monitored"]
    monitor = SystemMonitor(
        monitored.telemetry,
        interval=monitor_interval,
        slos=SloMonitor(
            [Objective(name="availability", objective=0.999)],
            telemetry=monitored.telemetry,
        ),
    )
    monitored.monitor = monitor
    try:
        for label, service in services.items():
            service.register("live", frozen)
            warm = [service.predict("live", X) for X in requests[:n_threads]]
            labels_match = labels_match and all(
                np.array_equal(got, want) for got, want in zip(warm, expected)
            )
        monitor.start()
        for _ in range(max(repeats, 1)):
            for label, service in services.items():
                timings[label] = min(
                    timings[label],
                    _drive_concurrent(
                        lambda X: service.predict("live", X), requests, n_threads
                    ),
                )
        monitor_samples = monitor.samples
        monitor_errors = monitor.errors
        series_names = monitored.telemetry.series.names()
    finally:
        for service in services.values():
            service.close()

    unmonitored_pps = len(queries) / max(timings["unmonitored"], 1e-9)
    for label in ("unmonitored", "monitored"):
        seconds = timings[label]
        pps = len(queries) / max(seconds, 1e-9)
        result.add_row(
            configuration=label,
            seconds=float(seconds),
            points_per_sec=float(pps),
            relative=float(pps / max(unmonitored_pps, 1e-9)),
        )

    result.metadata["labels_match"] = bool(labels_match)
    result.metadata["monitor_samples"] = int(monitor_samples)
    result.metadata["monitor_errors"] = int(monitor_errors)
    result.metadata["series_recorded"] = sorted(series_names)
    result.metadata["model_cells"] = frozen.n_cells
    return result
