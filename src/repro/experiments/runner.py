"""Shared machinery for the experiment modules.

The paper compares algorithms under a common protocol: every method is run on
the same data, scored with AMI restricted to true cluster members, slow
methods are automated over a small parameter grid (DBSCAN) or given the true
``k`` (k-means, EM), and quadratic methods are subsampled when the dataset is
too large for them.  :class:`AlgorithmSpec` captures those per-algorithm
details so each experiment module only declares *what* to run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.baselines import (
    DBSCAN,
    EMClustering,
    KMeans,
    RIC,
    SelfTuningSpectralClustering,
    SkinnyDip,
    WaveCluster,
)
from repro.baselines.base import NOISE_LABEL
from repro.baselines.postprocess import assign_noise_to_nearest_cluster
from repro.core.adawave import AdaWave
from repro.datasets.base import Dataset
from repro.metrics import adjusted_mutual_info, ami_on_true_clusters
from repro.utils.validation import check_random_state


@dataclass
class AlgorithmSpec:
    """How to build and evaluate one algorithm in an experiment.

    Attributes
    ----------
    name:
        Row / series label used in the output tables.
    factory:
        Callable ``(dataset) -> estimator`` so specs can use ground-truth
        information the paper also grants (e.g. the correct ``k``).
    max_points:
        If the dataset is larger, a uniform subsample of this size is used
        (the scored points are the sampled ones); mirrors how the paper's
        quadratic baselines are only feasible on smaller data.
    parameter_grid:
        Optional list of factories; every one is run and the best AMI is
        reported (the paper's automation of DBSCAN over eps).
    assign_noise:
        If true, detected noise points are reassigned to the nearest cluster
        centroid before scoring (the paper's protocol for real-world data).
    """

    name: str
    factory: Callable[[Dataset], object]
    max_points: Optional[int] = None
    parameter_grid: Optional[Sequence[Callable[[Dataset], object]]] = None
    assign_noise: bool = False


@dataclass
class ExperimentResult:
    """Rows of one regenerated table / figure plus free-form metadata."""

    experiment: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_row(self, **values) -> None:
        """Append a row (missing columns are allowed and rendered blank)."""
        self.rows.append(values)

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def best_by(self, metric: str, group: Optional[str] = None) -> Dict[object, str]:
        """Name of the best algorithm per group according to ``metric``.

        ``group=None`` treats the whole table as a single group keyed ``None``.
        """
        best: Dict[object, Dict[str, object]] = {}
        for row in self.rows:
            key = row.get(group) if group else None
            value = row.get(metric)
            if value is None:
                continue
            if key not in best or value > best[key][metric]:
                best[key] = row
        return {key: str(row.get("algorithm", "")) for key, row in best.items()}


def _subsample(dataset: Dataset, max_points: Optional[int], seed: int = 0) -> Dataset:
    if max_points is None or dataset.n_samples <= max_points:
        return dataset
    rng = check_random_state(seed)
    indices = rng.choice(dataset.n_samples, size=max_points, replace=False)
    return Dataset(
        name=dataset.name,
        points=dataset.points[indices],
        labels=dataset.labels[indices],
        metadata={**dataset.metadata, "subsampled_to": max_points},
    )


def evaluate_algorithm(spec: AlgorithmSpec, dataset: Dataset, *, noise_aware: bool = True) -> Dict[str, object]:
    """Run one algorithm spec on a dataset and return its result row.

    Returns a dict with the algorithm name, AMI, number of detected clusters,
    wall-clock seconds and (when a parameter grid was used) the winning
    parameter index.
    """
    working = _subsample(dataset, spec.max_points)
    factories = list(spec.parameter_grid) if spec.parameter_grid else [spec.factory]

    best: Dict[str, object] = {
        "algorithm": spec.name,
        "dataset": dataset.name,
        "ami": -np.inf,
        "n_clusters": 0,
        "seconds": 0.0,
        "grid_index": None,
    }
    for index, factory in enumerate(factories):
        estimator = factory(working)
        start = time.perf_counter()
        try:
            labels = estimator.fit_predict(working.points)
        except Exception as error:  # pragma: no cover - defensive, mirrors the paper's "*failed" entries
            best.setdefault("error", str(error))
            continue
        elapsed = time.perf_counter() - start

        scored_labels = labels
        if spec.assign_noise:
            scored_labels = assign_noise_to_nearest_cluster(working.points, labels)
        if noise_aware and (working.labels == NOISE_LABEL).any():
            ami = ami_on_true_clusters(working.labels, scored_labels)
        else:
            ami = adjusted_mutual_info(working.labels, scored_labels)
        n_clusters = len(set(int(l) for l in labels if l != NOISE_LABEL))
        if ami > best["ami"]:
            best.update(
                {
                    "ami": float(ami),
                    "n_clusters": n_clusters,
                    "seconds": float(elapsed),
                    "grid_index": index if spec.parameter_grid else None,
                }
            )
    if best["ami"] == -np.inf:
        best["ami"] = 0.0
    return best


def dbscan_grid(
    eps_values: Sequence[float] = tuple(np.round(np.arange(0.01, 0.21, 0.01), 3)),
    min_samples: int = 8,
) -> List[Callable[[Dataset], object]]:
    """The paper's DBSCAN automation: fixed minPts, eps swept over a grid."""
    return [
        (lambda dataset, eps=eps: DBSCAN(eps=eps, min_samples=min_samples))
        for eps in eps_values
    ]


def default_algorithms(
    *,
    include_slow: bool = True,
    adawave_scale: int = 128,
    subsample_quadratic: int = 3000,
    dbscan_eps: Sequence[float] = tuple(np.round(np.arange(0.02, 0.21, 0.02), 3)),
    random_state: int = 0,
) -> List[AlgorithmSpec]:
    """The algorithm roster used by the synthetic comparison experiments.

    ``include_slow=False`` drops the quadratic methods (spectral, RIC) that
    Fig. 8 does not plot, leaving the six series of the noise sweep.
    """
    specs: List[AlgorithmSpec] = [
        AlgorithmSpec(
            name="AdaWave",
            factory=lambda dataset: AdaWave(scale=adawave_scale),
        ),
        AlgorithmSpec(
            name="SkinnyDip",
            factory=lambda dataset: SkinnyDip(alpha=0.05, n_boot=100),
            max_points=20000,
        ),
        AlgorithmSpec(
            name="DBSCAN",
            factory=lambda dataset: DBSCAN(eps=0.05, min_samples=8),
            parameter_grid=dbscan_grid(dbscan_eps),
            max_points=subsample_quadratic,
        ),
        AlgorithmSpec(
            name="EM",
            factory=lambda dataset: EMClustering(
                n_components=max(dataset.n_clusters, 1), random_state=random_state
            ),
            max_points=20000,
        ),
        AlgorithmSpec(
            name="k-means",
            factory=lambda dataset: KMeans(
                n_clusters=max(dataset.n_clusters, 1), n_init=5, random_state=random_state
            ),
            max_points=50000,
        ),
        AlgorithmSpec(
            name="WaveCluster",
            factory=lambda dataset: WaveCluster(scale=adawave_scale),
        ),
    ]
    if include_slow:
        specs.extend(
            [
                AlgorithmSpec(
                    name="STSC",
                    factory=lambda dataset: SelfTuningSpectralClustering(random_state=random_state),
                    max_points=min(subsample_quadratic, 2000),
                ),
                AlgorithmSpec(
                    name="RIC",
                    factory=lambda dataset: RIC(
                        n_initial_clusters=max(2 * max(dataset.n_clusters, 1), 4),
                        random_state=random_state,
                    ),
                    max_points=subsample_quadratic,
                ),
            ]
        )
    return specs
