"""E3 -- the real-world comparison of Table I.

The paper evaluates eight algorithms on nine UCI datasets and reports AMI,
with AdaWave achieving the best average (~0.60) and the top score on six of
the nine datasets.  This module reruns the comparison on the offline
simulants of :mod:`repro.datasets.uci_like`; the substitution is documented
in DESIGN.md.  Per the paper's protocol, detected noise points are assigned
to the nearest cluster with a k-means step before scoring because these
datasets have no noise label.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines import (
    DBSCAN,
    DipMeans,
    EMClustering,
    KMeans,
    RIC,
    SelfTuningSpectralClustering,
    SkinnyDip,
)
from repro.core.adawave import AdaWave
from repro.datasets.uci_like import UCI_DATASET_NAMES, load_uci_like
from repro.experiments.runner import AlgorithmSpec, ExperimentResult, dbscan_grid, evaluate_algorithm


def _algorithm_roster(seed: int, quadratic_cap: int) -> List[AlgorithmSpec]:
    """The eight Table I algorithms, each with the paper's automation rules."""
    return [
        AlgorithmSpec(
            "AdaWave",
            # Small real-world datasets need a data-driven grid resolution and
            # no small-component suppression (clusters may occupy few cells).
            lambda data: AdaWave(scale="auto", min_cluster_cells=1),
            assign_noise=True,
        ),
        AlgorithmSpec(
            "SkinnyDip",
            lambda data: SkinnyDip(alpha=0.05, n_boot=100),
            assign_noise=True,
            max_points=20000,
        ),
        AlgorithmSpec(
            "DBSCAN",
            lambda data: DBSCAN(eps=0.1, min_samples=8),
            parameter_grid=_dbscan_grid_standardized(),
            assign_noise=True,
            max_points=quadratic_cap,
        ),
        AlgorithmSpec(
            "EM",
            lambda data: EMClustering(n_components=max(data.n_clusters, 1), random_state=seed),
            max_points=20000,
        ),
        AlgorithmSpec(
            "k-means",
            lambda data: KMeans(n_clusters=max(data.n_clusters, 1), n_init=5, random_state=seed),
        ),
        AlgorithmSpec(
            "STSC",
            lambda data: SelfTuningSpectralClustering(random_state=seed),
            max_points=min(quadratic_cap, 2000),
        ),
        AlgorithmSpec(
            "DipMean",
            lambda data: DipMeans(random_state=seed),
            max_points=quadratic_cap,
        ),
        AlgorithmSpec(
            "RIC",
            lambda data: RIC(n_initial_clusters=max(2 * max(data.n_clusters, 1), 4), random_state=seed),
            assign_noise=True,
            max_points=quadratic_cap,
        ),
    ]


def _dbscan_grid_standardized():
    """DBSCAN eps grid expressed as fractions of the data diameter.

    The UCI simulants live on very different scales, so the eps grid adapts to
    each dataset: the factories standardise eps by the per-dataset feature
    spread at call time.
    """
    fractions = np.round(np.arange(0.02, 0.31, 0.02), 3)

    def make_factory(fraction):
        def factory(dataset):
            spread = float(np.mean(dataset.points.max(axis=0) - dataset.points.min(axis=0)))
            return DBSCAN(eps=max(fraction * spread, 1e-6), min_samples=8)

        return factory

    return [make_factory(fraction) for fraction in fractions]


def run_realworld_comparison(
    dataset_names: Sequence[str] = UCI_DATASET_NAMES,
    seed: int = 0,
    roadmap_points: int = 20000,
    quadratic_cap: int = 3000,
    dataset_sizes: Optional[Dict[str, int]] = None,
) -> ExperimentResult:
    """Regenerate Table I on the offline simulants.

    Returns a long-format result with one row per (dataset, algorithm) plus a
    trailing ``AVG`` block per algorithm, mirroring the paper's final column.
    """
    result = ExperimentResult(
        experiment="E3: real-world comparison (Table I)",
        columns=["dataset", "algorithm", "ami", "n_clusters", "seconds"],
        metadata={
            "datasets": list(dataset_names),
            "seed": seed,
            "paper_reference": "AdaWave best average AMI (~0.60), best on 6 of 9 datasets",
        },
    )
    specs = _algorithm_roster(seed, quadratic_cap)
    totals: Dict[str, List[float]] = {spec.name: [] for spec in specs}

    for name in dataset_names:
        size_override = (dataset_sizes or {}).get(name)
        if name == "roadmap" and size_override is None:
            size_override = roadmap_points
        dataset = load_uci_like(name, seed=seed, n_samples=size_override)
        for spec in specs:
            row = evaluate_algorithm(spec, dataset, noise_aware=True)
            result.add_row(
                dataset=name,
                algorithm=row["algorithm"],
                ami=row["ami"],
                n_clusters=row["n_clusters"],
                seconds=row["seconds"],
            )
            totals[spec.name].append(row["ami"])

    for spec in specs:
        scores = totals[spec.name]
        result.add_row(
            dataset="AVG",
            algorithm=spec.name,
            ami=float(np.mean(scores)) if scores else 0.0,
            n_clusters=None,
            seconds=None,
        )
    return result
