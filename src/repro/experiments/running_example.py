"""E1 -- the running example of Fig. 1 / Fig. 2.

The paper introduces AdaWave on a highly noisy five-cluster dataset and
reports the qualitative failure of k-means (AMI ~0.25), DBSCAN (~0.28 with 21
clusters) and SkinnyDip, versus AdaWave's ~0.76 with the five clusters plus a
noise group.  ``run_running_example`` regenerates that comparison: four
algorithms on the same dataset, reporting AMI and the number of detected
clusters.
"""

from __future__ import annotations

from repro.baselines import DBSCAN, KMeans, SkinnyDip
from repro.core.adawave import AdaWave
from repro.datasets.synthetic import running_example
from repro.experiments.runner import AlgorithmSpec, ExperimentResult, dbscan_grid, evaluate_algorithm


def run_running_example(
    noise_fraction: float = 0.8,
    n_per_cluster: int = 2000,
    seed: int = 0,
    adawave_scale: int = 128,
    dbscan_max_points: int = 3000,
) -> ExperimentResult:
    """Regenerate the Fig. 1 / Fig. 2 comparison.

    Returns an :class:`ExperimentResult` with one row per algorithm and the
    columns ``algorithm``, ``ami``, ``n_clusters`` and ``seconds``.
    """
    dataset = running_example(
        noise_fraction=noise_fraction, n_per_cluster=n_per_cluster, seed=seed
    )
    specs = [
        AlgorithmSpec("AdaWave", lambda data: AdaWave(scale=adawave_scale)),
        AlgorithmSpec(
            "k-means",
            lambda data: KMeans(n_clusters=max(data.n_clusters, 1), n_init=5, random_state=seed),
        ),
        AlgorithmSpec(
            "DBSCAN",
            lambda data: DBSCAN(eps=0.05, min_samples=8),
            parameter_grid=dbscan_grid(),
            max_points=dbscan_max_points,
        ),
        AlgorithmSpec("SkinnyDip", lambda data: SkinnyDip(alpha=0.05, n_boot=100), max_points=20000),
    ]

    result = ExperimentResult(
        experiment="E1: running example (Fig. 1 / Fig. 2)",
        columns=["algorithm", "ami", "n_clusters", "seconds"],
        metadata={
            "noise_fraction": noise_fraction,
            "n_per_cluster": n_per_cluster,
            "n_samples": dataset.n_samples,
            "seed": seed,
            "paper_reference": {"k-means": 0.25, "DBSCAN": 0.28, "AdaWave": 0.76},
        },
    )
    for spec in specs:
        row = evaluate_algorithm(spec, dataset)
        result.add_row(
            algorithm=row["algorithm"],
            ami=row["ami"],
            n_clusters=row["n_clusters"],
            seconds=row["seconds"],
        )
    return result
