"""E5 -- the Roadmap case study of Fig. 9.

The paper runs AdaWave on the 2-D road network of North Jutland and reports
that the detected clusters correspond to the densely populated cities
(Aalborg, Hjorring, Frederikshavn, ...), with an AMI of 0.735.  This module
reruns the study on the road-network simulant: AdaWave (and, for context, the
automated DBSCAN baseline) cluster the simulated network, and the result rows
record the AMI, the number of detected clusters and how many of the simulated
cities were recovered (a city counts as recovered when one detected cluster
contains the majority of its points).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.baselines import DBSCAN
from repro.baselines.base import NOISE_LABEL
from repro.core.adawave import AdaWave
from repro.datasets.roadmap import roadmap_simulant
from repro.experiments.runner import AlgorithmSpec, ExperimentResult, dbscan_grid, evaluate_algorithm
from repro.metrics import ami_on_true_clusters


def _cities_recovered(labels_true: np.ndarray, labels_pred: np.ndarray) -> int:
    """Number of ground-truth cities whose majority is inside one detected cluster."""
    recovered = 0
    for city in sorted(set(int(l) for l in labels_true if l != NOISE_LABEL)):
        members = labels_pred[labels_true == city]
        members = members[members != NOISE_LABEL]
        if members.size == 0:
            continue
        counts = np.bincount(members)
        if counts.max() > 0.5 * np.sum(labels_true == city):
            recovered += 1
    return recovered


def run_roadmap_case_study(
    n_samples: int = 20000,
    seed: int = 0,
    adawave_scale: int = 128,
    dbscan_max_points: int = 3000,
) -> ExperimentResult:
    """Regenerate the Fig. 9 case study on the road-network simulant."""
    dataset = roadmap_simulant(n_samples=n_samples, seed=seed)
    n_cities = dataset.n_clusters

    result = ExperimentResult(
        experiment="E5: Roadmap case study (Fig. 9)",
        columns=["algorithm", "ami", "n_clusters", "cities_recovered", "seconds"],
        metadata={
            "n_samples": n_samples,
            "n_cities": n_cities,
            "seed": seed,
            "paper_reference": {"AdaWave AMI": 0.735},
        },
    )

    adawave_spec = AlgorithmSpec("AdaWave", lambda data: AdaWave(scale=adawave_scale))
    dbscan_spec = AlgorithmSpec(
        "DBSCAN",
        lambda data: DBSCAN(eps=0.02, min_samples=8),
        parameter_grid=dbscan_grid(),
        max_points=dbscan_max_points,
    )
    for spec in (adawave_spec, dbscan_spec):
        row = evaluate_algorithm(spec, dataset)
        # Re-run the winning configuration once on the full data to count the
        # recovered cities (evaluate_algorithm may have subsampled).
        if spec.name == "AdaWave":
            labels = AdaWave(scale=adawave_scale).fit_predict(dataset.points)
            cities = _cities_recovered(dataset.labels, labels)
            ami = ami_on_true_clusters(dataset.labels, labels)
            row = {**row, "ami": ami, "n_clusters": len(set(labels[labels >= 0].tolist()))}
        else:
            cities = None
        result.add_row(
            algorithm=spec.name,
            ami=row["ami"],
            n_clusters=row["n_clusters"],
            cities_recovered=cities,
            seconds=row["seconds"],
        )
    return result
