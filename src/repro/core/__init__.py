"""AdaWave core: the paper's primary contribution.

The algorithm (Algorithm 1 of the paper) runs in four stages:

1. quantize the feature space into a sparse grid (:mod:`repro.grid`);
2. apply a per-dimension discrete wavelet transform to the grid densities and
   keep only the scale-space (approximation) coefficients
   (:mod:`repro.core.transform`);
3. adaptively choose a density threshold with the elbow criterion and filter
   the noise grids (:mod:`repro.core.threshold`);
4. extract connected components among the surviving transformed grids, label
   them and map the labels back to the original objects through the lookup
   table (:mod:`repro.core.adawave`).

:class:`repro.core.multiresolution.MultiResolutionAdaWave` exposes the
multi-resolution property inherited from the wavelet transform: the same
quantized grid clustered at several decomposition levels at once.
"""

from repro.core.adawave import AdaWave, AdaWaveResult
from repro.core.threshold import (
    elbow_threshold_angle,
    elbow_threshold_distance,
    elbow_threshold_segments,
    adaptive_threshold,
    ThresholdDiagnostics,
)
from repro.core.transform import wavelet_smooth_grid
from repro.core.multiresolution import MultiResolutionAdaWave

__all__ = [
    "AdaWave",
    "AdaWaveResult",
    "MultiResolutionAdaWave",
    "elbow_threshold_angle",
    "elbow_threshold_distance",
    "elbow_threshold_segments",
    "adaptive_threshold",
    "ThresholdDiagnostics",
    "wavelet_smooth_grid",
]
