"""Per-dimension wavelet decomposition of the sparse grid (Algorithm 3).

The quantized feature space is a d-dimensional density array stored sparsely.
AdaWave applies a one-dimensional DWT along every dimension in turn and keeps
only the scale-space (approximation) coefficients, discarding the wavelet
(detail) coefficients entirely -- they "usually correspond to the noise part"
(Section IV-B).  Each pass halves the resolution along its dimension, so after
``level`` passes over all dimensions the transformed grid is the
``LL...L`` subband at resolution ``scale / 2**level``.

The transform never materialises the dense grid: it walks the occupied 1-D
lines of the sparse grid (there are at most as many lines as occupied cells),
transforms each line and stores the non-negligible approximation
coefficients, which keeps the cost O(number of occupied cells * scale).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.grid.sparse_grid import SparseGrid
from repro.wavelets.dwt import dwt
from repro.wavelets.filters import build_wavelet

# Coefficients with magnitude below this fraction of one object's mass are
# treated as numerically zero and not stored (they arise from the filter
# side-lobes spreading into empty cells).
_NEGLIGIBLE = 1e-9


def _transform_axis(grid: SparseGrid, wavelet, axis: int) -> SparseGrid:
    """Single-level low-pass transform of the grid along one axis."""
    new_shape = list(grid.shape)
    new_shape[axis] = (grid.shape[axis] + 1) // 2
    transformed = SparseGrid(new_shape)
    for key, line in grid.lines_along(axis):
        approx, _detail = dwt(line, wavelet, mode="periodization")
        for position, value in enumerate(approx):
            if abs(value) <= _NEGLIGIBLE:
                continue
            cell = key[:axis] + (position,) + key[axis:]
            transformed.add(cell, float(value))
    return transformed


def wavelet_smooth_grid(
    grid: SparseGrid,
    wavelet: str = "bior2.2",
    level: int = 1,
) -> Tuple[SparseGrid, Tuple[int, ...]]:
    """Transform a sparse grid into its level-``level`` approximation subband.

    Parameters
    ----------
    grid:
        Quantized feature space (cell densities).
    wavelet:
        Wavelet basis name or :class:`~repro.wavelets.filters.Wavelet`.  The
        paper uses the Cohen-Daubechies-Feauveau (2,2) biorthogonal spline.
    level:
        Number of decomposition levels; every level halves the resolution in
        each dimension.

    Returns
    -------
    (transformed_grid, shape):
        The transformed sparse grid (scale-space coefficients only) and its
        shape.  Negative coefficients produced by the filter side-lobes are
        preserved; the subsequent threshold filtering removes them together
        with the other low-value cells.
    """
    if level < 1:
        raise ValueError(f"level must be >= 1; got {level}.")
    bank = build_wavelet(wavelet)
    current = grid
    for _ in range(level):
        if min(current.shape) < 2:
            break
        for axis in range(current.ndim):
            current = _transform_axis(current, bank, axis)
    return current, current.shape


def grid_energy(grid: SparseGrid) -> float:
    """Sum of squared densities -- used by tests to check energy compaction."""
    densities = grid.densities()
    return float(np.sum(densities**2))
