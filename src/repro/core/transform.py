"""Per-dimension wavelet decomposition of the sparse grid (Algorithm 3).

The quantized feature space is a d-dimensional density array stored sparsely.
AdaWave applies a one-dimensional DWT along every dimension in turn and keeps
only the scale-space (approximation) coefficients, discarding the wavelet
(detail) coefficients entirely -- they "usually correspond to the noise part"
(Section IV-B).  Each pass halves the resolution along its dimension, so after
``level`` passes over all dimensions the transformed grid is the
``LL...L`` subband at resolution ``scale / 2**level``.

The transform never materialises the dense d-dimensional grid: it gathers the
occupied 1-D lines of the sparse grid (there are at most as many lines as
occupied cells) into one ``(n_lines, scale)`` matrix and runs a single batched
DWT over it, which keeps the cost ``O(number of occupied cells * scale)`` and
turns the per-line Python loop of the original implementation into three
vectorized array passes (group, transform, scatter).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.grid.sparse_grid import SparseGrid
from repro.wavelets.dwt import dwt_batch
from repro.wavelets.filters import build_wavelet

# Coefficients with magnitude below this fraction of one object's mass are
# treated as numerically zero and not stored (they arise from the filter
# side-lobes spreading into empty cells).
_NEGLIGIBLE = 1e-9


def _transform_axis(
    grid: SparseGrid, wavelet, axis: int, workspace: Optional["np.ndarray"] = None
) -> SparseGrid:
    """Single-level low-pass transform of the grid along one axis.

    ``workspace`` may supply a reusable scratch matrix for the dense line
    batch (see :meth:`SparseGrid.line_matrix`).
    """
    new_shape = list(grid.shape)
    new_shape[axis] = (grid.shape[axis] + 1) // 2
    keys, matrix = grid.line_matrix(axis, out=workspace)
    if len(keys) == 0:
        return SparseGrid(new_shape)
    approx, _detail = dwt_batch(matrix, wavelet)
    mask = np.abs(approx) > _NEGLIGIBLE
    line_index, position = np.nonzero(mask)
    coords = np.empty((len(line_index), grid.ndim), dtype=np.int64)
    coords[:, :axis] = keys[line_index, :axis]
    coords[:, axis] = position
    coords[:, axis + 1 :] = keys[line_index, axis:]
    return SparseGrid.from_coo(new_shape, coords, approx[mask])


def wavelet_smooth_grid(
    grid: SparseGrid,
    wavelet: str = "bior2.2",
    level: int = 1,
    workspace: Optional["Workspace"] = None,
) -> Tuple[SparseGrid, Tuple[int, ...]]:
    """Transform a sparse grid into its level-``level`` approximation subband.

    Parameters
    ----------
    grid:
        Quantized feature space (cell densities).
    wavelet:
        Wavelet basis name or :class:`~repro.wavelets.filters.Wavelet`.  The
        paper uses the Cohen-Daubechies-Feauveau (2,2) biorthogonal spline.
    level:
        Number of decomposition levels; every level halves the resolution in
        each dimension.
    workspace:
        Optional :class:`Workspace` whose scratch buffer is reused for the
        dense line batches (lets a batch runner transform many grids without
        reallocating).

    Returns
    -------
    (transformed_grid, shape):
        The transformed sparse grid (scale-space coefficients only) and its
        shape.  Negative coefficients produced by the filter side-lobes are
        preserved; the subsequent threshold filtering removes them together
        with the other low-value cells.
    """
    if level < 1:
        raise ValueError(f"level must be >= 1; got {level}.")
    bank = build_wavelet(wavelet)
    current = grid
    for _ in range(level):
        if min(current.shape) < 2:
            break
        for axis in range(current.ndim):
            scratch = None
            if workspace is not None:
                scratch = workspace.line_buffer(current.n_occupied, current.shape[axis])
            current = _transform_axis(current, bank, axis, workspace=scratch)
    return current, current.shape


class Workspace:
    """Reusable scratch memory for repeated grid transforms.

    The batched line transform needs one dense ``(n_lines, length)`` matrix
    per axis pass.  A :class:`Workspace` keeps a single growing buffer and
    hands out zeroed slices of it, so a :class:`~repro.engine.BatchRunner`
    clustering many datasets allocates the matrix once instead of once per
    dataset and axis.
    """

    def __init__(self) -> None:
        self._buffer: Optional[np.ndarray] = None

    def line_buffer(self, n_lines: int, length: int) -> np.ndarray:
        """A scratch matrix with at least ``n_lines`` rows and ``length`` columns."""
        if (
            self._buffer is None
            or self._buffer.shape[0] < n_lines
            or self._buffer.shape[1] < length
        ):
            rows = max(n_lines, self._buffer.shape[0] if self._buffer is not None else 0)
            cols = max(length, self._buffer.shape[1] if self._buffer is not None else 0)
            self._buffer = np.zeros((rows, cols))
        return self._buffer


def grid_energy(grid: SparseGrid) -> float:
    """Sum of squared densities -- used by tests to check energy compaction."""
    densities = grid.densities()
    return float(np.sum(densities**2))
