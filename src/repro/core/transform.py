"""Per-dimension wavelet decomposition of the sparse grid (Algorithm 3).

The quantized feature space is a d-dimensional density array stored sparsely.
AdaWave applies a one-dimensional DWT along every dimension in turn and keeps
only the scale-space (approximation) coefficients, discarding the wavelet
(detail) coefficients entirely -- they "usually correspond to the noise part"
(Section IV-B).  Each pass halves the resolution along its dimension, so after
``level`` passes over all dimensions the transformed grid is the
``LL...L`` subband at resolution ``scale / 2**level``.

The transform never materialises the dense d-dimensional grid: it gathers the
occupied 1-D lines of the sparse grid (there are at most as many lines as
occupied cells) into one ``(n_lines, scale)`` matrix and runs a single batched
DWT over it, which keeps the cost ``O(number of occupied cells * scale)`` and
turns the per-line Python loop of the original implementation into three
vectorized array passes (group, transform, scatter).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Tuple

import numpy as np

from repro.grid.sparse_grid import SparseGrid
from repro.wavelets.backends import TransformBackend, resolve_backend
from repro.wavelets.filters import build_wavelet
from repro.wavelets.thresholding import (
    LevelPolicy,
    hard_threshold,
    soft_threshold,
    universal_threshold,
)

# Coefficients with magnitude below this fraction of one object's mass are
# treated as numerically zero and not stored (they arise from the filter
# side-lobes spreading into empty cells).
_NEGLIGIBLE = 1e-9

# Line matrices smaller than this run serially: below it the transform takes
# tens of microseconds and thread handoff would dominate.  Tests lower it to
# exercise the chunked path on tiny fixtures.
_PARALLEL_MIN_ELEMENTS = 1 << 16

_EXECUTOR: Optional[ThreadPoolExecutor] = None
_EXECUTOR_WORKERS = 0
_EXECUTOR_LOCK = threading.Lock()


def _transform_executor(n_workers: int) -> ThreadPoolExecutor:
    """Shared lazily-built thread pool for line-chunk fan-out.

    One process-wide pool is reused across fits (thread startup is not free);
    it grows if a caller asks for more workers than it was built with.
    """
    global _EXECUTOR, _EXECUTOR_WORKERS
    with _EXECUTOR_LOCK:
        if _EXECUTOR is None or _EXECUTOR_WORKERS < n_workers:
            if _EXECUTOR is not None:
                _EXECUTOR.shutdown(wait=False)
            _EXECUTOR = ThreadPoolExecutor(
                max_workers=n_workers, thread_name_prefix="repro-transform"
            )
            _EXECUTOR_WORKERS = n_workers
        return _EXECUTOR


def approx_lines(
    matrix,
    wavelet,
    backend=None,
    n_workers: Optional[int] = None,
) -> np.ndarray:
    """Low-pass transform every row of ``matrix`` via the chosen backend.

    Rows (grid lines) are independent, so large matrices are chunked by row
    and fanned across the shared thread pool -- the numpy matmul and the
    lifting ufunc kernels release the GIL on large blocks.  Chunked output is
    bit-identical to the serial call because every kernel processes rows
    independently; the equivalence suite pins this.

    ``backend`` accepts anything :func:`resolve_backend` does (``None`` /
    ``"auto"`` / a name / a :class:`TransformBackend`); ``n_workers`` follows
    the :func:`repro.serve.parallel.resolve_n_workers` convention (``None`` =
    one per CPU, capped by the number of row chunks).
    """
    resolved = (
        backend if isinstance(backend, TransformBackend) else resolve_backend(backend, wavelet)
    )
    matrix = np.asarray(matrix, dtype=np.float64)
    n_rows = matrix.shape[0] if matrix.ndim == 2 else 0
    if n_rows < 2 or matrix.size < _PARALLEL_MIN_ELEMENTS:
        return resolved.approx_batch(matrix, wavelet)
    # Imported lazily: repro.serve.parallel pulls in the estimator, which
    # would be a circular import at module load time.
    from repro.serve.parallel import resolve_n_workers

    n_chunks = resolve_n_workers(n_workers, n_tasks=n_rows)
    if n_chunks <= 1:
        return resolved.approx_batch(matrix, wavelet)
    bounds = np.linspace(0, n_rows, n_chunks + 1).astype(np.int64)
    chunks = [matrix[a:b] for a, b in zip(bounds[:-1], bounds[1:]) if b > a]
    pool = _transform_executor(len(chunks))
    parts = list(pool.map(lambda chunk: resolved.approx_batch(chunk, wavelet), chunks))
    return np.concatenate(parts, axis=0)


def _transform_axis(
    grid: SparseGrid,
    wavelet,
    axis: int,
    workspace: Optional["np.ndarray"] = None,
    backend=None,
    n_workers: Optional[int] = None,
) -> SparseGrid:
    """Single-level low-pass transform of the grid along one axis.

    ``workspace`` may supply a reusable scratch matrix for the dense line
    batch (see :meth:`SparseGrid.line_matrix`).
    """
    new_shape = list(grid.shape)
    new_shape[axis] = (grid.shape[axis] + 1) // 2
    keys, matrix = grid.line_matrix(axis, out=workspace)
    if len(keys) == 0:
        return SparseGrid(new_shape)
    approx = approx_lines(matrix, wavelet, backend=backend, n_workers=n_workers)
    mask = np.abs(approx) > _NEGLIGIBLE
    line_index, position = np.nonzero(mask)
    coords = np.empty((len(line_index), grid.ndim), dtype=np.int64)
    coords[:, :axis] = keys[line_index, :axis]
    coords[:, axis] = position
    coords[:, axis + 1 :] = keys[line_index, axis:]
    return SparseGrid.from_coo(new_shape, coords, approx[mask])


def _shrink_grid(grid: SparseGrid, rule: str) -> SparseGrid:
    """One MAD-scaled VisuShrink pass over a grid's approximation coefficients.

    Estimates the universal threshold from the occupied-cell values
    (:func:`repro.wavelets.universal_threshold` -- MAD sigma with std
    fallback), applies the hard or soft rule and drops the zeroed cells.
    Degenerate cases are contained: an unestimable noise scale (empty or
    constant band) or a cut that would erase every cell leaves the grid
    unchanged rather than handing the threshold stage an empty band.
    """
    values = grid.values
    if len(values) == 0:
        return grid
    try:
        cut = universal_threshold(values)
    except ValueError:
        return grid
    if cut <= 0.0:
        return grid
    shrunk = soft_threshold(values, cut) if rule == "soft" else hard_threshold(values, cut)
    mask = shrunk != 0.0
    if not mask.any():
        return grid
    if mask.all() and rule == "hard":
        return grid
    return SparseGrid.from_coo(grid.shape, grid.coords[mask], shrunk[mask])


def wavelet_smooth_grid(
    grid: SparseGrid,
    wavelet: str = "bior2.2",
    level: int = 1,
    workspace: Optional["Workspace"] = None,
    backend=None,
    n_workers: Optional[int] = None,
    shrink: Optional[LevelPolicy] = None,
) -> Tuple[SparseGrid, Tuple[int, ...]]:
    """Transform a sparse grid into its level-``level`` approximation subband.

    Parameters
    ----------
    grid:
        Quantized feature space (cell densities).
    wavelet:
        Wavelet basis name or :class:`~repro.wavelets.filters.Wavelet`.  The
        paper uses the Cohen-Daubechies-Feauveau (2,2) biorthogonal spline.
    level:
        Number of decomposition levels; every level halves the resolution in
        each dimension.
    workspace:
        Optional :class:`Workspace` whose scratch buffer is reused for the
        dense line batches (lets a batch runner transform many grids without
        reallocating).
    backend:
        Transform backend spec (``None`` / ``"auto"`` / a registered name /
        a :class:`~repro.wavelets.backends.TransformBackend`); resolved once
        and reused for every axis pass.
    n_workers:
        Thread count for chunked line-batch fan-out (``None`` = one per CPU).
    shrink:
        Optional :class:`~repro.wavelets.LevelPolicy` adding a MAD-scaled
        VisuShrink denoising pass in the wavelet domain.  Per-level policies
        re-estimate the noise scale and cut after every decomposition level;
        ``global-soft`` shrinks the final approximation band once.
        ``global-hard`` (and ``None``) add nothing here -- the adaptive
        elbow criterion downstream already is the global hard cut.

    Returns
    -------
    (transformed_grid, shape):
        The transformed sparse grid (scale-space coefficients only) and its
        shape.  Negative coefficients produced by the filter side-lobes are
        preserved; the subsequent threshold filtering removes them together
        with the other low-value cells.
    """
    if level < 1:
        raise ValueError(f"level must be >= 1; got {level}.")
    bank = build_wavelet(wavelet)
    resolved = (
        backend if isinstance(backend, TransformBackend) else resolve_backend(backend, bank)
    )
    per_level = shrink is not None and shrink.mode == "per-level"
    current = grid
    for _ in range(level):
        if min(current.shape) < 2:
            break
        for axis in range(current.ndim):
            scratch = None
            if workspace is not None:
                scratch = workspace.line_buffer(current.n_occupied, current.shape[axis])
            current = _transform_axis(
                current, bank, axis, workspace=scratch, backend=resolved, n_workers=n_workers
            )
        if per_level:
            current = _shrink_grid(current, shrink.rule)
    if shrink is not None and shrink.mode == "global" and shrink.rule == "soft":
        current = _shrink_grid(current, "soft")
    return current, current.shape


class Workspace:
    """Reusable scratch memory for repeated grid transforms.

    The batched line transform needs one dense ``(n_lines, length)`` matrix
    per axis pass.  A :class:`Workspace` keeps a single growing buffer and
    hands out zeroed slices of it, so a :class:`~repro.engine.BatchRunner`
    clustering many datasets allocates the matrix once instead of once per
    dataset and axis.
    """

    def __init__(self) -> None:
        self._buffer: Optional[np.ndarray] = None

    def line_buffer(self, n_lines: int, length: int) -> np.ndarray:
        """A scratch matrix with at least ``n_lines`` rows and ``length`` columns."""
        if (
            self._buffer is None
            or self._buffer.shape[0] < n_lines
            or self._buffer.shape[1] < length
        ):
            rows = max(n_lines, self._buffer.shape[0] if self._buffer is not None else 0)
            cols = max(length, self._buffer.shape[1] if self._buffer is not None else 0)
            self._buffer = np.zeros((rows, cols))
        return self._buffer


def grid_energy(grid: SparseGrid) -> float:
    """Sum of squared densities -- used by tests to check energy compaction."""
    densities = grid.densities()
    return float(np.sum(densities**2))
