"""Multi-resolution clustering (Section IV-F, last property).

Because the wavelet transform is layered (the Mallat algorithm decomposes the
approximation again at every level), a single quantization of the data can be
clustered at several resolutions: low levels preserve fine structure, high
levels merge nearby groups.  ``MultiResolutionAdaWave`` shares the work the
way the tuning sweep does: the data is quantized *once*, the shared
grid-side pipeline (:func:`repro.core.pipeline.run_grid_pipeline`, the same
function the :mod:`repro.tune` sweep runs per pyramid level) runs once per
requested level over that sketch, and only the final label lookup touches
the points again -- so clustering ``L`` levels costs about one fit plus
``L`` cheap grid passes, not ``L`` full fits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.adawave import AdaWave, AdaWaveResult, build_result
from repro.core.transform import Workspace
from repro.grid.quantizer import GridQuantizer
from repro.utils.validation import check_array


@dataclass
class ResolutionLevel:
    """Clustering produced at one decomposition level."""

    level: int
    labels: np.ndarray
    n_clusters: int
    threshold: float
    result: AdaWaveResult


class MultiResolutionAdaWave:
    """Run AdaWave at several wavelet decomposition levels.

    Parameters
    ----------
    scale:
        Quantization intervals per dimension (shared by every level);
        ``"auto"`` resolves through :meth:`AdaWave.auto_scale`.  For
        data-driven *scale* selection use ``AdaWave(scale="tune",
        tune_levels=...)`` instead, which sweeps resolutions and levels
        jointly.
    wavelet:
        Wavelet basis name.
    levels:
        Iterable of decomposition levels to evaluate (default ``(1, 2, 3)``).
    **adawave_kwargs:
        Remaining keyword arguments forwarded to :class:`AdaWave`.

    Attributes
    ----------
    levels_:
        List of :class:`ResolutionLevel`, one per requested level, in order.
    labels_:
        Labels of the *selected* level (see ``select``), populated by
        :meth:`fit`.
    """

    def __init__(
        self,
        scale: Union[int, Sequence[int], str] = 128,
        wavelet: str = "bior2.2",
        levels: Sequence[int] = (1, 2, 3),
        select: str = "finest",
        **adawave_kwargs,
    ) -> None:
        if not levels:
            raise ValueError("levels must contain at least one decomposition level.")
        if any(int(level) < 1 for level in levels):
            raise ValueError(f"every level must be >= 1; got {list(levels)}.")
        if select not in ("finest", "coarsest", "most_clusters"):
            raise ValueError(
                f"select must be 'finest', 'coarsest' or 'most_clusters'; got {select!r}."
            )
        if isinstance(scale, str) and scale == "tune":
            raise ValueError(
                "MultiResolutionAdaWave evaluates fixed decomposition levels; "
                "for joint scale + level selection use "
                "AdaWave(scale='tune', tune_levels=...)."
            )
        self.scale = scale
        self.wavelet = wavelet
        self.levels = [int(level) for level in levels]
        self.select = select
        self.adawave_kwargs = adawave_kwargs

        self.levels_: List[ResolutionLevel] = []
        self.labels_: Optional[np.ndarray] = None
        self.selected_level_: Optional[int] = None

    def fit(self, X) -> "MultiResolutionAdaWave":
        """Cluster ``X`` at every requested level over one shared quantization."""
        from repro.core.pipeline import run_grid_pipeline

        X = check_array(X, name="X")
        # A template estimator validates the configuration and carries the
        # shared parameter resolution (scale heuristic, pipeline params).
        template = AdaWave(
            scale=self.scale,
            wavelet=self.wavelet,
            level=self.levels[0],
            **self.adawave_kwargs,
        )
        if X.shape[0] < 2 and template.bounds is None:
            raise ValueError(
                "AdaWave cannot infer a quantization grid from a single sample; "
                "provide at least 2 samples or explicit bounds=(lower, upper)."
            )
        scale = template._resolve_scale(X.shape[0], X.shape[1])
        quantizer = GridQuantizer(scale=scale, bounds=template.bounds)
        quantization = quantizer.fit_transform(X)
        # One grid-side pipeline pass per level over the shared sketch (the
        # same machinery the tuning sweep runs per pyramid level), with one
        # scratch workspace reused across the per-level transforms.
        workspace = Workspace()
        self.levels_ = []
        for level in self.levels:
            pipe = run_grid_pipeline(
                quantization.grid,
                level=level,
                workspace=workspace,
                **template._pipeline_params(),
            )
            result = build_result(quantization, pipe)
            self.levels_.append(
                ResolutionLevel(
                    level=level,
                    labels=result.labels,
                    n_clusters=result.n_clusters,
                    threshold=result.threshold.threshold,
                    result=result,
                )
            )
        selected = self._select_level()
        self.selected_level_ = selected.level
        self.labels_ = selected.labels
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Fit at every level and return the labels of the selected level."""
        return self.fit(X).labels_

    def _select_level(self) -> ResolutionLevel:
        if self.select == "finest":
            return min(self.levels_, key=lambda item: item.level)
        if self.select == "coarsest":
            return max(self.levels_, key=lambda item: item.level)
        return max(self.levels_, key=lambda item: item.n_clusters)

    def labels_by_level(self) -> Dict[int, np.ndarray]:
        """Mapping of level to label vector (after :meth:`fit`)."""
        return {item.level: item.labels for item in self.levels_}

    def cluster_counts(self) -> Dict[int, int]:
        """Mapping of level to number of detected clusters."""
        return {item.level: item.n_clusters for item in self.levels_}
