"""Multi-resolution clustering (Section IV-F, last property).

Because the wavelet transform is layered (the Mallat algorithm decomposes the
approximation again at every level), a single quantization of the data can be
clustered at several resolutions: low levels preserve fine structure, high
levels merge nearby groups.  ``MultiResolutionAdaWave`` runs the AdaWave
pipeline once per requested level, sharing the quantization step, and lets
the caller inspect or select among the resulting clusterings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.adawave import AdaWave, AdaWaveResult
from repro.utils.validation import check_array


@dataclass
class ResolutionLevel:
    """Clustering produced at one decomposition level."""

    level: int
    labels: np.ndarray
    n_clusters: int
    threshold: float
    result: AdaWaveResult


class MultiResolutionAdaWave:
    """Run AdaWave at several wavelet decomposition levels.

    Parameters
    ----------
    scale:
        Quantization intervals per dimension (shared by every level).
    wavelet:
        Wavelet basis name.
    levels:
        Iterable of decomposition levels to evaluate (default ``(1, 2, 3)``).
    **adawave_kwargs:
        Remaining keyword arguments forwarded to :class:`AdaWave`.

    Attributes
    ----------
    levels_:
        List of :class:`ResolutionLevel`, one per requested level, in order.
    labels_:
        Labels of the *selected* level (see ``select``), populated by
        :meth:`fit`.
    """

    def __init__(
        self,
        scale: Union[int, Sequence[int]] = 128,
        wavelet: str = "bior2.2",
        levels: Sequence[int] = (1, 2, 3),
        select: str = "finest",
        **adawave_kwargs,
    ) -> None:
        if not levels:
            raise ValueError("levels must contain at least one decomposition level.")
        if any(int(level) < 1 for level in levels):
            raise ValueError(f"every level must be >= 1; got {list(levels)}.")
        if select not in ("finest", "coarsest", "most_clusters"):
            raise ValueError(
                f"select must be 'finest', 'coarsest' or 'most_clusters'; got {select!r}."
            )
        self.scale = scale
        self.wavelet = wavelet
        self.levels = [int(level) for level in levels]
        self.select = select
        self.adawave_kwargs = adawave_kwargs

        self.levels_: List[ResolutionLevel] = []
        self.labels_: Optional[np.ndarray] = None
        self.selected_level_: Optional[int] = None

    def fit(self, X) -> "MultiResolutionAdaWave":
        """Cluster ``X`` at every requested level."""
        X = check_array(X, name="X")
        self.levels_ = []
        for level in self.levels:
            model = AdaWave(
                scale=self.scale, wavelet=self.wavelet, level=level, **self.adawave_kwargs
            )
            model.fit(X)
            self.levels_.append(
                ResolutionLevel(
                    level=level,
                    labels=model.labels_,
                    n_clusters=model.n_clusters_,
                    threshold=model.threshold_,
                    result=model.result_,
                )
            )
        selected = self._select_level()
        self.selected_level_ = selected.level
        self.labels_ = selected.labels
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Fit at every level and return the labels of the selected level."""
        return self.fit(X).labels_

    def _select_level(self) -> ResolutionLevel:
        if self.select == "finest":
            return min(self.levels_, key=lambda item: item.level)
        if self.select == "coarsest":
            return max(self.levels_, key=lambda item: item.level)
        return max(self.levels_, key=lambda item: item.n_clusters)

    def labels_by_level(self) -> Dict[int, np.ndarray]:
        """Mapping of level to label vector (after :meth:`fit`)."""
        return {item.level: item.labels for item in self.levels_}

    def cluster_counts(self) -> Dict[int, int]:
        """Mapping of level to number of detected clusters."""
        return {item.level: item.n_clusters for item in self.levels_}
