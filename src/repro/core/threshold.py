"""Adaptive threshold selection ("elbow theory", Algorithm 4).

After the wavelet transform the sorted grid densities fall into three roughly
linear pieces (Fig. 6 of the paper): a steep "signal" segment of dense cluster
cells, a "middle" segment of boundary cells, and an almost horizontal "noise"
segment.  The best filtering threshold sits where the middle segment meets the
noise segment.

Two detectors are implemented:

``elbow_threshold_angle``
    The paper's Algorithm 4: walk the sorted density curve, measure the
    turning angle between consecutive difference vectors, remember the
    sharpest turn seen so far, and stop at the first point where the curve
    has straightened back out to a third of that sharpest turn.  The curve is
    normalised to the unit square first so the angles are scale free.

``elbow_threshold_segments``
    The description of Fig. 6 taken literally: fit the sorted curve with
    three line segments by least squares over all breakpoint pairs and return
    the density at the junction of the middle and noise segments.  This is
    the default because it is the most faithful to the stated criterion ("the
    position where the 'middle line' and the 'noise line' intersects is
    generally the best threshold") and markedly more robust than the raw
    per-point angle scan on large grids.

``elbow_threshold_distance``
    A robust fallback (the classic "knee" rule): the point of the sorted
    curve with maximum distance to the chord joining its endpoints.

``adaptive_threshold`` applies the three-segment rule and falls back to the
chord rule when the segment fit is degenerate (fewer than a handful of
distinct densities).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class ThresholdDiagnostics:
    """Details of how the threshold was chosen (used by the ablation bench).

    Attributes
    ----------
    threshold:
        Selected density threshold; cells with density strictly above it
        survive the filtering step.
    index:
        Index into the descending sorted density curve where the elbow was
        detected.
    method:
        ``"angle"`` when Algorithm 4 triggered, ``"distance"`` for the chord
        fallback, ``"degenerate"`` when there were too few distinct densities
        to detect anything.
    sorted_densities:
        The descending density curve the decision was made on.
    """

    threshold: float
    index: int
    method: str
    sorted_densities: np.ndarray
    breakpoints: Optional[tuple] = None


def _normalized_curve(sorted_densities: np.ndarray) -> np.ndarray:
    """Map the sorted curve into the unit square so angles are scale free."""
    n = len(sorted_densities)
    x = np.linspace(0.0, 1.0, n)
    span = sorted_densities[0] - sorted_densities[-1]
    if span <= 0:
        y = np.zeros(n)
    else:
        y = (sorted_densities - sorted_densities[-1]) / span
    return np.column_stack([x, y])


def elbow_threshold_angle(densities, angle_divisor: float = 3.0) -> Optional[ThresholdDiagnostics]:
    """Algorithm 4: turning-angle detection of the middle / noise intersection.

    Parameters
    ----------
    densities:
        Grid densities (any order); the routine sorts them in descending
        order internally.
    angle_divisor:
        The paper stops at the first point whose turning angle is at most the
        sharpest turn seen so far divided by 3; this parameter exposes that
        constant for the ablation study.

    Returns
    -------
    ThresholdDiagnostics or None
        ``None`` when the criterion never triggers (caller should fall back).
    """
    values = np.sort(np.asarray(densities, dtype=np.float64))[::-1]
    if len(values) < 3 or values[0] == values[-1]:
        return None
    if angle_divisor <= 1.0:
        raise ValueError(f"angle_divisor must be > 1; got {angle_divisor}.")

    curve = _normalized_curve(values)
    # Forward difference vectors along the descending curve.
    segments = curve[:-1] - curve[1:]
    norms = np.linalg.norm(segments, axis=1)

    sharpest_turn = 0.0
    seen_turn = False
    for i in range(1, len(segments)):
        if norms[i - 1] < 1e-15 or norms[i] < 1e-15:
            continue
        cosine = np.clip(
            np.dot(segments[i - 1], segments[i]) / (norms[i - 1] * norms[i]), -1.0, 1.0
        )
        turning_angle = float(np.arccos(cosine))
        if turning_angle > sharpest_turn:
            sharpest_turn = turning_angle
            seen_turn = sharpest_turn > 1e-3
            continue
        if seen_turn and turning_angle <= sharpest_turn / angle_divisor:
            return ThresholdDiagnostics(
                threshold=float(values[i]),
                index=i,
                method="angle",
                sorted_densities=values,
            )
    return None


def elbow_threshold_distance(densities) -> ThresholdDiagnostics:
    """Chord rule: elbow = point of maximum distance to the endpoint chord."""
    values = np.sort(np.asarray(densities, dtype=np.float64))[::-1]
    if len(values) == 0:
        raise ValueError("cannot choose a threshold from an empty density set.")
    if len(values) < 3 or values[0] == values[-1]:
        return ThresholdDiagnostics(
            threshold=float(values[-1]) if len(values) else 0.0,
            index=len(values) - 1 if len(values) else 0,
            method="degenerate",
            sorted_densities=values,
        )
    curve = _normalized_curve(values)
    start, end = curve[0], curve[-1]
    chord = end - start
    chord_norm = np.linalg.norm(chord)
    relative = curve - start
    # Perpendicular distance of every curve point to the chord.
    cross = np.abs(relative[:, 0] * chord[1] - relative[:, 1] * chord[0])
    distances = cross / max(chord_norm, 1e-15)
    index = int(np.argmax(distances))
    return ThresholdDiagnostics(
        threshold=float(values[index]),
        index=index,
        method="distance",
        sorted_densities=values,
    )


def _segment_sse(prefix: dict, start, end) -> np.ndarray:
    """Sum of squared residuals of the least-squares line over ``[start, end)``.

    Uses the precomputed prefix sums of x, y, x^2, y^2 and x*y so each segment
    evaluation is O(1).  ``start``/``end`` may be scalars or broadcastable
    integer arrays; the result follows the broadcast shape, so a whole grid
    of candidate breakpoints evaluates in one vectorized pass.
    """
    start = np.asarray(start)
    end = np.asarray(end)
    n = end - start
    sum_x = prefix["x"][end] - prefix["x"][start]
    sum_y = prefix["y"][end] - prefix["y"][start]
    sum_xx = prefix["xx"][end] - prefix["xx"][start]
    sum_yy = prefix["yy"][end] - prefix["yy"][start]
    sum_xy = prefix["xy"][end] - prefix["xy"][start]
    safe_n = np.where(n < 2, 2, n)
    var_x = sum_xx - sum_x * sum_x / safe_n
    var_y = sum_yy - sum_y * sum_y / safe_n
    cov_xy = sum_xy - sum_x * sum_y / safe_n
    with np.errstate(divide="ignore", invalid="ignore"):
        fitted = var_y - cov_xy * cov_xy / var_x
    sse = np.where(var_x <= 1e-18, np.maximum(var_y, 0.0), np.maximum(fitted, 0.0))
    return np.where(n < 2, 0.0, sse)


def elbow_threshold_segments(densities, max_curve_points: int = 400) -> ThresholdDiagnostics:
    """Three-segment least-squares fit of the sorted density curve (Fig. 6).

    The descending density curve is (sub)sampled to at most
    ``max_curve_points`` positions, every pair of breakpoints is scored by the
    total squared error of fitting one line per segment, and the density at
    the junction between the middle and the noise segments of the best fit is
    returned as the threshold.
    """
    values = np.sort(np.asarray(densities, dtype=np.float64))[::-1]
    if len(values) == 0:
        raise ValueError("cannot choose a threshold from an empty density set.")
    if len(values) < 6 or values[0] == values[-1]:
        return ThresholdDiagnostics(
            threshold=float(values[-1]),
            index=len(values) - 1,
            method="degenerate",
            sorted_densities=values,
        )

    curve = _normalized_curve(values)
    # Subsample long curves so the O(points^2) breakpoint search stays cheap.
    if len(curve) > max_curve_points:
        sample_index = np.unique(
            np.round(np.linspace(0, len(curve) - 1, max_curve_points)).astype(int)
        )
    else:
        sample_index = np.arange(len(curve))
    x = curve[sample_index, 0]
    y = curve[sample_index, 1]
    n_points = len(sample_index)

    prefix = {
        "x": np.concatenate([[0.0], np.cumsum(x)]),
        "y": np.concatenate([[0.0], np.cumsum(y)]),
        "xx": np.concatenate([[0.0], np.cumsum(x * x)]),
        "yy": np.concatenate([[0.0], np.cumsum(y * y)]),
        "xy": np.concatenate([[0.0], np.cumsum(x * y)]),
    }

    # Breakpoints i < j split the curve into [0, i), [i, j), [j, n).  All
    # (i, j) pairs are scored in one broadcast pass: total error is
    # head(i) + middle(i, j) + tail(j), each an O(1) prefix-sum lookup.
    i_candidates = np.arange(2, n_points - 3)
    j_candidates = np.arange(4, n_points - 1)
    head = _segment_sse(prefix, 0, i_candidates)
    tail = _segment_sse(prefix, j_candidates, n_points)
    middle = _segment_sse(prefix, i_candidates[:, None], j_candidates[None, :])
    total = head[:, None] + middle + tail[None, :]
    # Mask infeasible pairs (middle segment shorter than 2 points).
    total[j_candidates[None, :] < i_candidates[:, None] + 2] = np.inf
    flat_best = int(np.argmin(total))
    best_breaks = (
        int(i_candidates[flat_best // len(j_candidates)]),
        int(j_candidates[flat_best % len(j_candidates)]),
    )

    junction = int(sample_index[best_breaks[1]])
    return ThresholdDiagnostics(
        threshold=float(values[junction]),
        index=junction,
        method="segments",
        sorted_densities=values,
        breakpoints=(int(sample_index[best_breaks[0]]), junction),
    )


def adaptive_threshold(densities, angle_divisor: float = 3.0) -> ThresholdDiagnostics:
    """Paper rule with robust fallback: three-segment fit guarded by the chord rule.

    The three-segment fit matches Fig. 6 when the curve really has the three
    regimes (signal / middle / noise).  When one regime is missing -- e.g. a
    single dense cluster in sparse noise produces only two regimes -- the fit
    can place the middle/noise junction deep inside the noise tail and return
    a threshold that filters nothing.  The chord (knee) rule is insensitive to
    that failure mode, so the final threshold is whichever of the two is
    larger (filters more noise).

    ``angle_divisor`` is accepted for interface compatibility with the literal
    Algorithm 4 variant; it only matters when the caller explicitly selects
    the angle method.
    """
    values = np.asarray(densities, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot choose a threshold from an empty density set.")
    segments = elbow_threshold_segments(values)
    if segments.method == "segments":
        return segments
    return elbow_threshold_distance(values)
