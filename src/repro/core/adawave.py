"""The AdaWave clustering estimator (Algorithm 1).

AdaWave clusters arbitrarily shaped groups in highly noisy data by:

1. quantizing the feature space into ``scale`` intervals per dimension and
   storing only occupied cells ("grid labeling", Algorithm 2);
2. applying a per-dimension discrete wavelet transform to the cell densities
   and keeping only the scale-space coefficients (Algorithm 3);
3. adaptively picking a density threshold with the elbow criterion and
   removing the noise cells (Algorithm 4);
4. finding the connected components of the surviving transformed cells,
   labelling them and mapping the labels back to the objects through the
   lookup table.

The algorithm is deterministic, parameter free in the sense that the default
``scale = 128`` and the CDF(2,2) wavelet are used for every experiment in the
paper, runs in ``O(n * m)`` time (``n`` objects, ``m`` occupied cells) and
never computes pairwise distances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.threshold import ThresholdDiagnostics, adaptive_threshold
from repro.core.transform import wavelet_smooth_grid
from repro.grid.connectivity import connected_components
from repro.grid.lookup import LookupTable, NOISE_LABEL
from repro.grid.quantizer import GridQuantizer, QuantizationResult
from repro.grid.sparse_grid import SparseGrid
from repro.utils.validation import check_array, check_positive_int

Cell = Tuple[int, ...]

_FULL_CONNECTIVITY_MAX_DIM = 3


@dataclass
class AdaWaveResult:
    """All intermediate artefacts of one AdaWave run.

    Exposed so the examples and the ablation experiments can inspect every
    stage of the pipeline without re-running it.
    """

    labels: np.ndarray
    quantization: QuantizationResult
    transformed_grid: SparseGrid
    threshold: ThresholdDiagnostics
    surviving_cells: Dict[Cell, int] = field(default_factory=dict)
    n_clusters: int = 0
    level: int = 1

    @property
    def noise_mask(self) -> np.ndarray:
        """Boolean mask of the objects AdaWave classified as noise."""
        return self.labels == NOISE_LABEL

    @property
    def cluster_sizes(self) -> Dict[int, int]:
        """Number of objects per detected cluster (noise excluded)."""
        sizes: Dict[int, int] = {}
        for label in self.labels:
            if label == NOISE_LABEL:
                continue
            sizes[int(label)] = sizes.get(int(label), 0) + 1
        return sizes


class AdaWave:
    """Adaptive wavelet clustering for highly noisy data.

    Parameters
    ----------
    scale:
        Number of quantization intervals per dimension (paper default: 128).
        Either a single integer, one value per dimension, or ``"auto"`` to
        derive the scale from the data size so that small, high-dimensional
        datasets are not quantized into an almost-empty grid.
    wavelet:
        Wavelet basis; the paper uses the Cohen-Daubechies-Feauveau (2,2)
        biorthogonal spline (``"bior2.2"``).
    level:
        Number of wavelet decomposition levels; each level halves the grid
        resolution and produces a coarser clustering (multi-resolution
        property).
    threshold_method:
        ``"auto"`` (three-segment fit of Fig. 6 with chord fallback),
        ``"segments"``, ``"angle"`` (the literal Algorithm 4 scan),
        ``"distance"``, or ``"none"`` to skip threshold filtering entirely
        (the WaveCluster-like ablation).
    connectivity:
        ``"face"``, ``"full"`` or ``"auto"`` (full for up to 3-D data, face
        otherwise); controls which transformed cells count as adjacent when
        forming clusters.
    min_cluster_cells:
        Connected components with fewer transformed cells than this are
        reclassified as noise.  The default of 3 suppresses the spurious
        one-or-two-cell components that isolated surviving noise cells would
        otherwise create in extremely noisy data; genuine clusters occupy far
        more cells at the default scale.
    angle_divisor:
        The Algorithm 4 constant (stop when the turning angle falls to the
        sharpest turn divided by this value).

    Attributes
    ----------
    labels_:
        Cluster label per object after :meth:`fit`; ``-1`` marks noise.
    n_clusters_:
        Number of detected clusters.
    threshold_:
        Density threshold selected by the adaptive rule.
    result_:
        Full :class:`AdaWaveResult` with every intermediate artefact.
    """

    def __init__(
        self,
        scale: Union[int, Sequence[int]] = 128,
        wavelet: str = "bior2.2",
        level: int = 1,
        threshold_method: str = "auto",
        connectivity: str = "auto",
        min_cluster_cells: int = 3,
        angle_divisor: float = 3.0,
    ) -> None:
        self.scale = scale
        self.wavelet = wavelet
        self.level = check_positive_int(level, name="level")
        if threshold_method not in ("auto", "segments", "angle", "distance", "none"):
            raise ValueError(
                "threshold_method must be 'auto', 'segments', 'angle', 'distance' or 'none'; "
                f"got {threshold_method!r}."
            )
        self.threshold_method = threshold_method
        if connectivity not in ("auto", "face", "full"):
            raise ValueError(
                f"connectivity must be 'auto', 'face' or 'full'; got {connectivity!r}."
            )
        self.connectivity = connectivity
        self.min_cluster_cells = check_positive_int(min_cluster_cells, name="min_cluster_cells")
        self.angle_divisor = float(angle_divisor)

        self.labels_: Optional[np.ndarray] = None
        self.n_clusters_: Optional[int] = None
        self.threshold_: Optional[float] = None
        self.result_: Optional[AdaWaveResult] = None

    # -- pipeline stages ------------------------------------------------------

    def _resolve_connectivity(self, ndim: int) -> str:
        if self.connectivity != "auto":
            return self.connectivity
        return "full" if ndim <= _FULL_CONNECTIVITY_MAX_DIM else "face"

    def _select_threshold(self, transformed: SparseGrid) -> ThresholdDiagnostics:
        densities = transformed.densities()
        if self.threshold_method == "none":
            sorted_densities = np.sort(densities)[::-1]
            return ThresholdDiagnostics(
                threshold=0.0, index=len(densities) - 1, method="none",
                sorted_densities=sorted_densities,
            )
        if self.threshold_method == "distance":
            from repro.core.threshold import elbow_threshold_distance

            return elbow_threshold_distance(densities)
        if self.threshold_method == "segments":
            from repro.core.threshold import elbow_threshold_segments

            return elbow_threshold_segments(densities)
        if self.threshold_method == "angle":
            from repro.core.threshold import elbow_threshold_angle

            diagnostics = elbow_threshold_angle(densities, angle_divisor=self.angle_divisor)
            if diagnostics is None:
                raise RuntimeError(
                    "the angle criterion did not trigger; use threshold_method='auto' "
                    "to fall back to the chord rule."
                )
            return diagnostics
        return adaptive_threshold(densities, angle_divisor=self.angle_divisor)

    def _extract_clusters(
        self, transformed: SparseGrid, threshold: float, ndim: int
    ) -> Dict[Cell, int]:
        surviving = [cell for cell, density in transformed.items() if density > threshold]
        if not surviving:
            return {}
        connectivity = self._resolve_connectivity(ndim)
        labels = connected_components(surviving, connectivity=connectivity, shape=transformed.shape)
        if self.min_cluster_cells > 1:
            sizes: Dict[int, int] = {}
            for label in labels.values():
                sizes[label] = sizes.get(label, 0) + 1
            keep = {label for label, size in sizes.items() if size >= self.min_cluster_cells}
            relabel = {old: new for new, old in enumerate(sorted(keep))}
            labels = {
                cell: relabel[label] for cell, label in labels.items() if label in keep
            }
        return labels

    # -- public API ------------------------------------------------------------

    @staticmethod
    def auto_scale(n_samples: int, n_features: int) -> int:
        """Data-driven grid resolution used when ``scale="auto"``.

        Aims for roughly two objects per occupied cell so the densities the
        threshold step sees remain informative even for small or
        high-dimensional datasets, while never exceeding the paper's default
        of 128 intervals or falling below 4.
        """
        target = (max(n_samples, 2) / 2.0) ** (1.0 / max(n_features, 1)) * 2.0
        return int(min(128, max(4, round(target))))

    def fit(self, X) -> "AdaWave":
        """Cluster the data matrix ``X`` of shape ``(n_samples, n_features)``."""
        X = check_array(X, name="X")
        # Step 1: quantize the feature space into a sparse grid.
        scale = self.scale
        if isinstance(scale, str):
            if scale != "auto":
                raise ValueError(f"scale must be an int, a sequence or 'auto'; got {scale!r}.")
            scale = self.auto_scale(X.shape[0], X.shape[1])
        quantizer = GridQuantizer(scale=scale)
        quantization = quantizer.fit_transform(X)

        # Step 2: per-dimension wavelet transform, keep the scale space only.
        transformed, _shape = wavelet_smooth_grid(
            quantization.grid, wavelet=self.wavelet, level=self.level
        )

        # Step 3: adaptive threshold filtering of the transformed densities.
        threshold = self._select_threshold(transformed)

        # Step 4: connected components among surviving cells, then map the
        # labels back to objects through the lookup table.
        cell_labels = self._extract_clusters(transformed, threshold.threshold, X.shape[1])
        lookup = LookupTable(level=self.level)
        labels = lookup.label_points(quantization.cell_ids, cell_labels)
        n_clusters = len(set(cell_labels.values())) if cell_labels else 0

        self.labels_ = labels
        self.n_clusters_ = n_clusters
        self.threshold_ = threshold.threshold
        self.result_ = AdaWaveResult(
            labels=labels,
            quantization=quantization,
            transformed_grid=transformed,
            threshold=threshold,
            surviving_cells=cell_labels,
            n_clusters=n_clusters,
            level=self.level,
        )
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Convenience wrapper: :meth:`fit` then return :attr:`labels_`."""
        return self.fit(X).labels_

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdaWave(scale={self.scale}, wavelet={self.wavelet!r}, level={self.level}, "
            f"threshold_method={self.threshold_method!r})"
        )
