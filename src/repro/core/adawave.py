"""The AdaWave clustering estimator (Algorithm 1).

AdaWave clusters arbitrarily shaped groups in highly noisy data by:

1. quantizing the feature space into ``scale`` intervals per dimension and
   storing only occupied cells ("grid labeling", Algorithm 2);
2. applying a per-dimension discrete wavelet transform to the cell densities
   and keeping only the scale-space coefficients (Algorithm 3);
3. adaptively picking a density threshold with the elbow criterion and
   removing the noise cells (Algorithm 4);
4. finding the connected components of the surviving transformed cells,
   labelling them and mapping the labels back to the objects through the
   lookup table.

The algorithm is deterministic, parameter free in the sense that the default
``scale = 128`` and the CDF(2,2) wavelet are used for every experiment in the
paper, runs in ``O(n * m)`` time (``n`` objects, ``m`` occupied cells) and
never computes pairwise distances.

All stages run as numpy array passes over the COO grid (the vectorized
engine).  The literal per-cell implementations survive in
:mod:`repro.engine.reference` as the ground truth of the golden-regression
tests; selecting them through the constructor was deprecated in a previous
release and has been removed.

The one knob the paper leaves hand-set -- ``scale`` -- can now be chosen by
the estimator itself: ``AdaWave(scale="tune")`` quantizes once at a fine
power-of-two base resolution, derives every coarser dyadic resolution from
that single sketch (:meth:`repro.grid.SparseGrid.coarsen` is exact for
power-of-two scales) and picks the resolution whose clustering is most
stable, all without ground-truth labels.  See :mod:`repro.tune`.

Because the quantized grid is a mergeable sketch, AdaWave also supports
out-of-core / streaming ingestion: :meth:`AdaWave.partial_fit` accumulates
batches into the grid (requires explicit ``bounds`` so every batch quantizes
identically) and :meth:`AdaWave.finalize` runs the cheap grid-side stages
(transform, threshold, components, lookup).  Any batch split of a dataset
yields exactly the labels a one-shot :meth:`fit` with the same bounds gives.
With ``scale="tune"`` the stream ingests at the fine base resolution and the
resolution choice happens at finalize time from the accumulated sketch --
ingest fine, serve coarse.

The sketch itself lives in :class:`repro.stream.StreamSketch`;
:meth:`partial_fit` / :meth:`merge_stream` are thin adapters over it, and
the same object powers the drift-aware online control plane
(:class:`repro.stream.StreamController`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.pipeline import (
    CONNECTIVITIES,
    THRESHOLD_METHODS,
    GridPipelineResult,
    resolve_connectivity,
    run_grid_pipeline,
)
from repro.core.threshold import ThresholdDiagnostics
from repro.core.transform import Workspace
from repro.grid.lookup import LookupTable, NOISE_LABEL
from repro.grid.quantizer import GridQuantizer, QuantizationResult
from repro.grid.sparse_grid import SparseGrid
from repro.utils.validation import NotFittedError, check_array, check_positive_int
from repro.wavelets.thresholding import LevelPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.serve.model import ClusterModel
    from repro.stream.sketch import StreamSketch
    from repro.tune.select import TuneResult
    from repro.wavelets.backends import TransformBackend

Cell = Tuple[int, ...]


@dataclass
class AdaWaveResult:
    """All intermediate artefacts of one AdaWave run.

    Exposed so the examples and the ablation experiments can inspect every
    stage of the pipeline without re-running it.
    """

    labels: np.ndarray
    quantization: QuantizationResult
    transformed_grid: SparseGrid
    threshold: ThresholdDiagnostics
    surviving_cells: Dict[Cell, int] = field(default_factory=dict)
    n_clusters: int = 0
    level: int = 1

    @property
    def noise_mask(self) -> np.ndarray:
        """Boolean mask of the objects AdaWave classified as noise."""
        return self.labels == NOISE_LABEL

    @property
    def cluster_sizes(self) -> Dict[int, int]:
        """Number of objects per detected cluster (noise excluded)."""
        sizes: Dict[int, int] = {}
        for label in self.labels:
            if label == NOISE_LABEL:
                continue
            sizes[int(label)] = sizes.get(int(label), 0) + 1
        return sizes


def build_result(
    quantization: QuantizationResult, pipe: GridPipelineResult
) -> AdaWaveResult:
    """Map a grid-side pipeline output back to objects as an :class:`AdaWaveResult`.

    The single place where surviving transformed cells become per-object
    labels; shared by :meth:`AdaWave.fit`/:meth:`AdaWave.finalize` and
    :class:`~repro.core.multiresolution.MultiResolutionAdaWave`.
    """
    lookup = LookupTable(level=pipe.level)
    labels = lookup.label_points_from_arrays(
        quantization.cell_ids, pipe.cell_coords, pipe.cell_labels
    )
    cell_labels = dict(
        zip(map(tuple, pipe.cell_coords.tolist()), pipe.cell_labels.tolist())
    )
    return AdaWaveResult(
        labels=labels,
        quantization=quantization,
        transformed_grid=pipe.transformed,
        threshold=pipe.threshold,
        surviving_cells=cell_labels,
        n_clusters=pipe.n_clusters,
        level=pipe.level,
    )


class AdaWave:
    """Adaptive wavelet clustering for highly noisy data.

    Parameters
    ----------
    scale:
        Number of quantization intervals per dimension (paper default: 128).
        Either a single integer, one value per dimension, ``"auto"`` to
        derive a power-of-two scale from the data size so that small,
        high-dimensional datasets are not quantized into an almost-empty
        grid, or ``"tune"`` to let the estimator select the scale itself:
        one quantization at a fine power-of-two base resolution, a dyadic
        grid pyramid derived from it, and a label-free stability sweep over
        the pyramid (see :mod:`repro.tune`).  Non-power-of-two scales remain
        reachable through an explicit integer.
    wavelet:
        Wavelet basis; the paper uses the Cohen-Daubechies-Feauveau (2,2)
        biorthogonal spline (``"bior2.2"``).  A sequence of names turns the
        basis into a tuning axis: the fit routes through the grid-pyramid
        sweep (one shared quantization) and the label-free scoring picks
        the family, exactly like ``scale="tune"`` picks the resolution.
    threshold:
        Denoising level policy: a :class:`~repro.wavelets.LevelPolicy` or
        one of ``"hard"`` (default -- the paper's pipeline, where the
        adaptive elbow is itself the global hard cut), ``"soft"``,
        ``"per-level-hard"``, ``"per-level-soft"`` (MAD-scaled VisuShrink
        shrinkage in the wavelet domain, re-estimated per decomposition
        level for the per-level variants), or ``"tune"`` to sweep all four
        policies from the one shared quantization and keep the one the
        label-free scoring prefers.  The resolved canonical name is exposed
        as :attr:`threshold_method_` and recorded in exported artifacts.
    backend:
        Transform backend for the per-axis low-pass passes: ``"auto"``
        (default -- the fastest registered backend that supports ``wavelet``,
        e.g. the batched lifting kernels for the Haar / CDF families, the
        numba kernels when numba is installed), ``"numpy"`` (the
        always-available reference), ``"lifting"``, or any
        :class:`~repro.wavelets.backends.TransformBackend` instance.  All
        backends are equivalence-pinned against the reference; the resolved
        name is exposed as :attr:`backend_` and recorded in exported
        artifacts.
    level:
        Number of wavelet decomposition levels; each level halves the grid
        resolution and produces a coarser clustering (multi-resolution
        property).
    threshold_method:
        ``"auto"`` (three-segment fit of Fig. 6 with chord fallback),
        ``"segments"``, ``"angle"`` (the literal Algorithm 4 scan),
        ``"distance"``, or ``"none"`` to skip threshold filtering entirely
        (the WaveCluster-like ablation).
    connectivity:
        ``"face"``, ``"full"`` or ``"auto"`` (full for up to 3-D data, face
        otherwise); controls which transformed cells count as adjacent when
        forming clusters.
    min_cluster_cells:
        Connected components with fewer transformed cells than this are
        reclassified as noise.  The default of 3 suppresses the spurious
        one-or-two-cell components that isolated surviving noise cells would
        otherwise create in extremely noisy data; genuine clusters occupy far
        more cells at the default scale.
    angle_divisor:
        The Algorithm 4 constant (stop when the turning angle falls to the
        sharpest turn divided by this value).
    bounds:
        Optional explicit ``(lower, upper)`` feature-space bounds forwarded
        to the quantizer.  Required for :meth:`partial_fit` (every batch must
        quantize against the same grid); optional for :meth:`fit`.
    engine:
        Must be ``"vectorized"`` (the only engine).  Selecting the removed
        ``"reference"`` engine raises ``ValueError``; the per-cell reference
        implementations stay importable from :mod:`repro.engine.reference`
        (with :func:`repro.engine.reference.fit_reference` as the one-shot
        driver) for the golden-regression tests.
    tune_levels:
        Decomposition levels the ``scale="tune"`` sweep evaluates in addition
        to the resolutions; defaults to ``(level,)``.  Ignored unless
        ``scale="tune"``.
    lookup_only:
        When true, the streaming path (:meth:`partial_fit` /
        :meth:`finalize`) retains no per-point state: ingestion is
        ``O(occupied cells)`` regardless of the number of samples, and
        :attr:`labels_` comes out empty after :meth:`finalize`.  Label
        points -- training or new -- through :meth:`predict` instead.

    Attributes
    ----------
    labels_:
        Cluster label per object after :meth:`fit` / :meth:`finalize`;
        ``-1`` marks noise.
    n_clusters_:
        Number of detected clusters.
    threshold_:
        Density threshold selected by the adaptive rule.
    backend_:
        Name of the transform backend that produced the fitted coefficients
        (``"auto"`` resolved to a concrete registered backend).
    threshold_method_:
        Canonical name of the level policy the fitted run used
        (``"global-hard"``, ..., with ``threshold="tune"`` resolved to the
        winner); recorded as ``threshold_method`` in exported artifacts.
    wavelet_:
        Name of the wavelet basis the fitted run used (a swept basis
        resolved to the winner).
    result_:
        Full :class:`AdaWaveResult` with every intermediate artefact.
    tune_result_:
        :class:`~repro.tune.TuneResult` with the per-candidate score table
        when the last fit / finalize resolved ``scale="tune"``; ``None``
        otherwise.
    n_seen_:
        Number of samples ingested so far via :meth:`partial_fit`.
    """

    def __init__(
        self,
        scale: Union[int, Sequence[int], str] = 128,
        wavelet: str = "bior2.2",
        backend: Union[str, "TransformBackend"] = "auto",
        level: int = 1,
        threshold_method: str = "auto",
        connectivity: str = "auto",
        min_cluster_cells: int = 3,
        angle_divisor: float = 3.0,
        bounds: Optional[Tuple[Sequence[float], Sequence[float]]] = None,
        engine: str = "vectorized",
        lookup_only: bool = False,
        tune_levels: Optional[Sequence[int]] = None,
        threshold: Union[str, LevelPolicy] = "hard",
    ) -> None:
        self.scale = scale
        if isinstance(wavelet, (list, tuple)):
            wavelet = tuple(wavelet)
            if not wavelet:
                raise ValueError("a swept wavelet sequence must not be empty.")
        self.wavelet = wavelet
        if not (isinstance(threshold, str) and threshold == "tune"):
            # Fail fast on typos; the spec itself (string or LevelPolicy) is
            # kept verbatim so repr/get_params round-trip.
            LevelPolicy.parse(threshold)
        self.threshold = threshold
        from repro.wavelets.backends import TransformBackend as _TransformBackend

        if backend is not None and not isinstance(backend, (str, _TransformBackend)):
            raise TypeError(
                "backend must be 'auto', a registered backend name or a "
                f"TransformBackend instance; got {type(backend).__name__}."
            )
        self.backend = backend
        self.level = check_positive_int(level, name="level")
        if threshold_method not in THRESHOLD_METHODS:
            raise ValueError(
                "threshold_method must be 'auto', 'segments', 'angle', 'distance' or 'none'; "
                f"got {threshold_method!r}."
            )
        self.threshold_method = threshold_method
        if connectivity not in CONNECTIVITIES:
            raise ValueError(
                f"connectivity must be 'auto', 'face' or 'full'; got {connectivity!r}."
            )
        self.connectivity = connectivity
        self.min_cluster_cells = check_positive_int(min_cluster_cells, name="min_cluster_cells")
        self.angle_divisor = float(angle_divisor)
        self.bounds = bounds
        if engine == "reference":
            raise ValueError(
                "AdaWave(engine='reference') has been removed after its "
                "deprecation cycle. The per-cell reference implementations "
                "remain importable from repro.engine.reference (use "
                "repro.engine.reference.fit_reference for a one-shot run); "
                "the estimator always uses the vectorized engine."
            )
        if engine != "vectorized":
            raise ValueError(f"engine must be 'vectorized'; got {engine!r}.")
        self.engine = engine
        self.lookup_only = bool(lookup_only)
        if tune_levels is not None:
            tune_levels = tuple(
                check_positive_int(lv, name="tune_levels") for lv in tune_levels
            )
            if not tune_levels:
                raise ValueError("tune_levels must contain at least one level.")
        self.tune_levels = tune_levels

        self.labels_: Optional[np.ndarray] = None
        self.n_clusters_: Optional[int] = None
        self.threshold_: Optional[float] = None
        self.backend_: Optional[str] = None
        self.threshold_method_: Optional[str] = None
        self.wavelet_: Optional[str] = None
        self.result_: Optional[AdaWaveResult] = None
        self.tune_result_: Optional["TuneResult"] = None
        self.stage_seconds_: Optional[Dict[str, float]] = None
        self.n_seen_: int = 0

        # Streaming state (populated by partial_fit).  The sketch owns the
        # quantization geometry, the COO grid and the ingest counters
        # (repro.stream.StreamSketch); the estimator only keeps the
        # per-point cell chunks needed to emit labels_ at finalize time.
        self._sketch: Optional["StreamSketch"] = None
        self._stream_cell_chunks: List[np.ndarray] = []
        # True while partial_fit batches have been ingested but not yet
        # clustered by finalize(); guards against fit() silently discarding
        # a stream in flight.
        self._stream_dirty: bool = False
        # Cached frozen artifact backing predict(); invalidated per (re)fit.
        self._served_model: Optional["ClusterModel"] = None
        # Shared scratch for the batched line transform (a BatchRunner may
        # inject its own so many estimators reuse one buffer).
        self._workspace: Optional[Workspace] = None

    # -- pipeline stages ------------------------------------------------------

    def _resolve_connectivity(self, ndim: int) -> str:
        return resolve_connectivity(self.connectivity, ndim)

    def _resolve_scale(self, n_samples: int, n_features: int) -> Union[int, Tuple[int, ...]]:
        scale = self.scale
        if isinstance(scale, str):
            if scale == "tune":
                raise ValueError(
                    "scale='tune' is resolved by the tuning sweep, not here; "
                    "this is a bug in the caller."
                )
            if scale != "auto":
                raise ValueError(
                    f"scale must be an int, a sequence, 'auto' or 'tune'; got {scale!r}."
                )
            return self.auto_scale(n_samples, n_features)
        if not np.isscalar(scale):
            values = tuple(scale)
            if len(values) != n_features:
                raise ValueError(
                    f"scale has {len(values)} entries but the data has "
                    f"{n_features} features; pass one interval count per dimension."
                )
        return scale

    def _pipeline_params(self) -> Dict[str, object]:
        """The grid-side stage parameters, as :func:`run_grid_pipeline` kwargs.

        ``wavelet`` may be a sequence and ``threshold`` may be ``"tune"``;
        both are sweep-axis specs the tuning path expands, so this dict only
        feeds :func:`run_grid_pipeline` directly when :meth:`_wants_sweep`
        is false.
        """
        return dict(
            wavelet=self.wavelet,
            threshold=self.threshold,
            threshold_method=self.threshold_method,
            connectivity=self.connectivity,
            min_cluster_cells=self.min_cluster_cells,
            angle_divisor=self.angle_divisor,
            backend=self.backend,
        )

    def _wants_sweep(self) -> bool:
        """Whether any constructor axis routes the fit through the tuner."""
        if isinstance(self.scale, str) and self.scale == "tune":
            return True
        if isinstance(self.threshold, str) and self.threshold == "tune":
            return True
        return isinstance(self.wavelet, tuple)

    def _finish(
        self, quantization: QuantizationResult, pipe: GridPipelineResult
    ) -> "AdaWave":
        """Map the grid-side pipeline output back to objects and publish it."""
        result = build_result(quantization, pipe)
        self.labels_ = result.labels
        self.n_clusters_ = result.n_clusters
        self.threshold_ = result.threshold.threshold
        self.result_ = result
        # Wall-clock breakdown of the winning grid-side run; rides into
        # artifact metadata so a served model carries its fit provenance.
        self.stage_seconds_ = dict(pipe.stage_seconds)
        self.backend_ = pipe.backend
        self.threshold_method_ = pipe.threshold_policy
        self.wavelet_ = pipe.wavelet
        self._served_model = None
        return self

    def _run_pipeline(self, quantization: QuantizationResult, n_features: int) -> "AdaWave":
        """Stages 2-4 (transform, threshold, components, lookup) on a grid."""
        pipe = run_grid_pipeline(
            quantization.grid,
            level=self.level,
            workspace=self._workspace,
            **self._pipeline_params(),
        )
        self.tune_result_ = None
        return self._finish(quantization, pipe)

    def _run_tuned(
        self,
        quantizer: GridQuantizer,
        base_grid: SparseGrid,
        base_cell_ids: np.ndarray,
        factors: Optional[Sequence[int]] = None,
    ) -> "AdaWave":
        """Sweep the grid pyramid axes and publish the winning configuration.

        ``base_grid`` is the quantization at the base scale; coarser
        resolution candidates are derived from it with
        :meth:`SparseGrid.coarsen` (exact -- no second pass over the points).
        ``base_cell_ids`` may be empty for lookup-only streams.  ``factors``
        restricts the pyramid's coarsening factors; ``(1,)`` keeps the fit at
        the base resolution so only the non-resolution axes (wavelet family,
        threshold policy) are swept.
        """
        from repro.tune.select import tune_pyramid

        # One scratch workspace for the whole sweep: the per-level line
        # matrices shrink monotonically, so every transform reuses the
        # buffer the finest level allocated.
        workspace = self._workspace if self._workspace is not None else Workspace()
        tune_result = tune_pyramid(
            base_grid,
            levels=self.tune_levels or (self.level,),
            factors=factors,
            workspace=workspace,
            **self._pipeline_params(),
        )
        best = tune_result.best.candidate
        shape = best.scale
        widths = (quantizer.upper_ - quantizer.lower_) / np.asarray(shape, dtype=np.float64)
        if len(base_cell_ids):
            cell_ids = base_cell_ids // best.factor
        else:
            cell_ids = base_cell_ids
        quantization = QuantizationResult(
            grid=best.grid,
            cell_ids=cell_ids,
            lower=quantizer.lower_.copy(),
            upper=quantizer.upper_.copy(),
            widths=widths,
        )
        self._finish(quantization, best.pipeline)
        # Keep the provenance surface (score table, chosen config) but drop
        # the losing candidates' grids and label arrays.
        self.tune_result_ = tune_result.compact()
        return self

    # -- public API ------------------------------------------------------------

    @staticmethod
    def auto_scale(n_samples: int, n_features: int) -> int:
        """Data-driven grid resolution used when ``scale="auto"``.

        Aims for roughly two objects per occupied cell so the densities the
        threshold step sees remain informative even for small or
        high-dimensional datasets, rounded to the nearest power of two so
        auto-scaled models stay compatible with the dyadic grid pyramid
        (:meth:`SparseGrid.coarsen`, :func:`repro.serve.parallel_ingest`
        shard merging, ``scale="tune"``).  Never exceeds the paper's default
        of 128 intervals or falls below 4; non-power-of-two resolutions stay
        reachable via an explicit integer ``scale``.
        """
        n_samples = check_positive_int(n_samples, name="n_samples")
        n_features = check_positive_int(n_features, name="n_features")
        target = (max(n_samples, 2) / 2.0) ** (1.0 / n_features) * 2.0
        exponent = int(round(np.log2(max(target, 1.0))))
        return int(min(128, max(4, 2**exponent)))

    def fit(self, X) -> "AdaWave":
        """Cluster the data matrix ``X`` of shape ``(n_samples, n_features)``."""
        if self._stream_dirty:
            raise ValueError(
                "fit() called mid-stream: partial_fit batches have been "
                "ingested but not clustered. Call finalize() to cluster them "
                "or reset() to discard the stream before fitting."
            )
        X = check_array(X, name="X")
        if X.shape[0] < 2 and self.bounds is None:
            raise ValueError(
                "AdaWave cannot infer a quantization grid from a single sample; "
                "provide at least 2 samples or explicit bounds=(lower, upper)."
            )
        self._reset_stream()
        self.n_seen_ = X.shape[0]
        if self._wants_sweep():
            # Quantize once; every candidate is derived from this one sketch.
            # With scale="tune" the base is the fine power-of-two resolution
            # and the pyramid spans all coarser dyadic scales; with a fixed
            # scale the pyramid is pinned to factor 1 and only the
            # non-resolution axes (wavelet family, threshold policy) sweep.
            if isinstance(self.scale, str) and self.scale == "tune":
                from repro.tune.pyramid import default_base_scale

                base_scale = default_base_scale(X.shape[1])
                factors = None
            else:
                base_scale = self._resolve_scale(X.shape[0], X.shape[1])
                factors = (1,)
            quantizer = GridQuantizer(scale=base_scale, bounds=self.bounds)
            quantization = quantizer.fit_transform(X)
            return self._run_tuned(
                quantizer, quantization.grid, quantization.cell_ids, factors=factors
            )
        # Step 1: quantize the feature space into a sparse grid.
        scale = self._resolve_scale(X.shape[0], X.shape[1])
        quantizer = GridQuantizer(scale=scale, bounds=self.bounds)
        quantization = quantizer.fit_transform(X)
        # Steps 2-4 are shared with the streaming path.
        return self._run_pipeline(quantization, X.shape[1])

    # -- streaming / out-of-core API -------------------------------------------

    def _reset_stream(self) -> None:
        self._sketch = None
        self._stream_cell_chunks = []
        self._stream_dirty = False
        self.n_seen_ = 0

    def reset(self) -> "AdaWave":
        """Discard all fitted and streaming state, returning to pristine.

        The explicit escape hatch for abandoning a stream mid-flight:
        :meth:`fit` refuses to run while unfinalized :meth:`partial_fit`
        batches exist, so call this first to intentionally drop them.
        """
        self._reset_stream()
        self.labels_ = None
        self.n_clusters_ = None
        self.threshold_ = None
        self.backend_ = None
        self.threshold_method_ = None
        self.wavelet_ = None
        self.result_ = None
        self.tune_result_ = None
        self.stage_seconds_ = None
        self._served_model = None
        return self

    def _streaming_scale(self, n_features: int) -> Union[int, Tuple[int, ...]]:
        """The quantization scale a stream ingests at; raises for ``"auto"``.

        ``scale="tune"`` streams ingest at the fine power-of-two base
        resolution (a function of the dimensionality only, so every shard and
        every batch split agrees on the grid) and pick the serving resolution
        at :meth:`finalize` time from the accumulated sketch.  ``"auto"``
        cannot work mid-stream -- it depends on the full dataset size, which
        a stream never knows -- so it raises with the two workable options.
        """
        if isinstance(self.scale, str):
            if self.scale == "tune":
                from repro.tune.pyramid import default_base_scale

                return default_base_scale(n_features)
            if self.scale != "auto":
                raise ValueError(
                    f"scale must be an int, a sequence, 'auto' or 'tune'; "
                    f"got {self.scale!r}."
                )
            raise ValueError(
                "partial_fit cannot resolve scale='auto': the heuristic "
                "depends on the full dataset size, which a stream never "
                "knows. Either pass an explicit power-of-two scale (e.g. "
                f"scale={self.auto_scale(100_000, n_features)}) or use "
                "scale='tune' to ingest at a fine base resolution and let "
                "finalize() pick the serving resolution from the accumulated "
                "sketch."
            )
        return self._resolve_scale(2, n_features)

    def _new_sketch(self, n_features: int) -> "StreamSketch":
        """A fresh :class:`~repro.stream.StreamSketch` for this configuration."""
        from repro.stream.sketch import StreamSketch

        return StreamSketch(
            bounds=self.bounds,
            scale=self._streaming_scale(n_features),
            n_features=n_features,
        )

    def partial_fit(self, X_batch) -> "AdaWave":
        """Ingest one batch of samples into the streaming sparse grid.

        The grid is a mergeable sketch, so batches may arrive in any order
        and any split: after :meth:`finalize`, the labels are identical to a
        one-shot :meth:`fit` on the concatenated data.  Explicit ``bounds``
        are required (data-derived bounds would depend on which batches have
        been seen), and ``scale`` must be concrete or ``"tune"``
        (``"auto"`` depends on the full dataset size and raises; with
        ``"tune"`` the stream ingests at the power-of-two base resolution
        and :meth:`finalize` picks the serving resolution from the sketch).
        Batches containing values outside the bounds raise ``ValueError``
        rather than silently clipping into the edge cells.  Empty batches
        are no-ops.
        """
        if self.bounds is None:
            raise ValueError(
                "partial_fit requires explicit bounds=(lower, upper): streaming "
                "batches must all quantize against the same grid, which "
                "data-derived bounds cannot guarantee."
            )
        X = check_array(X_batch, name="X_batch", allow_empty=True)
        if isinstance(self.scale, str) and self.scale == "auto":
            self._streaming_scale(X.shape[1])  # raises the actionable error
        if X.shape[0] == 0:
            return self
        if self._sketch is None:
            # Starting a new stream: drop any leftover state (n_seen_ from a
            # prior fit) so the counter matches exactly what this stream saw.
            self._reset_stream()
            self._sketch = self._new_sketch(X.shape[1])
        cells = self._sketch.ingest(X)
        if not self.lookup_only:
            # Per-point assignments are only needed to emit labels_ for the
            # ingested points; lookup-only streams label through predict()
            # and keep ingestion memory proportional to the occupied cells.
            self._stream_cell_chunks.append(cells)
        self._stream_dirty = True
        self.n_seen_ = self._sketch.n_seen
        return self

    def finalize(self) -> "AdaWave":
        """Run the grid-side stages on everything ingested via :meth:`partial_fit`.

        Cheap relative to ingestion: the transform, threshold and component
        stages only touch the (much smaller) occupied-cell arrays, so a
        streaming consumer can finalize repeatedly to get intermediate
        clusterings while batches keep arriving.
        """
        if self._sketch is None or self.n_seen_ == 0:
            raise ValueError("finalize() called before any non-empty partial_fit batch.")
        sketch = self._sketch
        if self.lookup_only:
            cell_ids = np.empty((0, sketch.ndim), dtype=np.int64)
        elif len(self._stream_cell_chunks) > 1:
            cell_ids = np.concatenate(self._stream_cell_chunks, axis=0)
        else:
            cell_ids = self._stream_cell_chunks[0]
        if self._wants_sweep():
            # The stream ingested at the base resolution; pick the serving
            # configuration now, from the accumulated sketch alone.  With a
            # fixed scale only the wavelet / threshold axes sweep (factor 1).
            # A raising sweep (tuning can legitimately fail on degenerate
            # data) must leave the stream dirty so the fit()-mid-stream
            # guard keeps protecting the ingested batches.
            tune_scale = isinstance(self.scale, str) and self.scale == "tune"
            self._run_tuned(
                sketch.quantizer,
                sketch.grid.copy(),
                cell_ids,
                factors=None if tune_scale else (1,),
            )
            self._stream_dirty = False
            return self
        quantization = QuantizationResult(
            grid=sketch.grid.copy(),
            cell_ids=cell_ids,
            lower=sketch.lower.copy(),
            upper=sketch.upper.copy(),
            widths=sketch.widths,
        )
        self._run_pipeline(quantization, sketch.ndim)
        self._stream_dirty = False
        return self

    def merge_stream(self, other: "AdaWave") -> "AdaWave":
        """Merge another estimator's streaming state into this one.

        The quantized grid is an associative, commutative sketch, so two
        estimators that ingested disjoint shards of a dataset (against the
        same bounds and scale) can be reduced into one -- this is what makes
        sharded parallel ingestion (:func:`repro.serve.parallel_ingest`)
        exact rather than approximate.  ``other`` is left untouched.
        """
        if not isinstance(other, AdaWave):
            raise TypeError(f"can only merge another AdaWave; got {type(other).__name__}.")
        if other._sketch is None or other.n_seen_ == 0:
            return self
        if self._sketch is None:
            if self.bounds is None:
                raise ValueError("merge_stream requires explicit bounds on both estimators.")
            self._reset_stream()
            # Build the sketch from *this* estimator's configuration; the
            # compatibility check inside StreamSketch.merge then genuinely
            # verifies the shards quantized against the same grid instead of
            # adopting theirs.  _streaming_scale raises the actionable error
            # for scale='auto' and resolves scale='tune' to the shared base
            # resolution.
            self._sketch = self._new_sketch(other._sketch.ndim)
        self._sketch.merge(other._sketch)
        if not self.lookup_only:
            if other.lookup_only:
                raise ValueError(
                    "cannot merge a lookup-only stream into one that tracks "
                    "per-point labels; the merged labels_ would be incomplete."
                )
            # Chunk arrays are append-only (finalize just concatenates and
            # reads), so sharing them instead of copying keeps parallel
            # ingestion at the serial path's peak memory.
            self._stream_cell_chunks.extend(other._stream_cell_chunks)
        self._stream_dirty = True
        self.n_seen_ = self._sketch.n_seen
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Convenience wrapper: :meth:`fit` then return :attr:`labels_`."""
        return self.fit(X).labels_

    # -- serving API -------------------------------------------------------------

    def export_model(self) -> "ClusterModel":
        """Freeze the fitted clustering into a shippable, queryable artifact.

        The returned :class:`~repro.serve.ClusterModel` holds only the
        quantizer bounds, the surviving transformed-cell -> cluster map and
        the threshold/level metadata -- ``O(occupied cells)`` memory, no
        reference to the training points -- and supports versioned
        ``save``/``load`` plus vectorized ``predict``.
        """
        from repro.serve.model import ClusterModel

        if self.result_ is None:
            raise NotFittedError(
                "this AdaWave instance is not fitted yet; call fit() (or "
                "partial_fit batches followed by finalize()) before exporting "
                "a ClusterModel."
            )
        return ClusterModel.from_estimator(self)

    def predict(self, X) -> np.ndarray:
        """Label arbitrary points against the fitted clustering.

        A pure lookup: points are quantized with the fitted bounds, mapped to
        transformed-space cells and matched against the surviving-cell index
        in one encode / ``searchsorted`` pass.  Points in unmapped cells --
        including anything outside the fitted bounds -- get the noise label.
        Requires :meth:`fit` or :meth:`finalize` first; never touches the
        training points.
        """
        if self.result_ is None:
            raise NotFittedError(
                "this AdaWave instance is not fitted yet; call fit() (or "
                "partial_fit batches followed by finalize()) before predict()."
            )
        if self._served_model is None:
            self._served_model = self.export_model()
        return self._served_model.predict(X)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdaWave(scale={self.scale}, wavelet={self.wavelet!r}, "
            f"backend={self.backend!r}, level={self.level}, "
            f"threshold_method={self.threshold_method!r}, engine={self.engine!r})"
        )
