"""The grid-side AdaWave pipeline stages as reusable free functions.

Everything that happens *after* quantization -- the per-dimension wavelet
transform (Algorithm 3), the adaptive threshold (Algorithm 4), the
connected-component cluster extraction and the small-component suppression --
only ever touches the occupied-cell arrays, never the points.  This module
packages those stages as one function over a :class:`SparseGrid` so that the
three consumers share a single implementation:

* :class:`~repro.core.adawave.AdaWave` runs it once per fit / finalize;
* :class:`~repro.core.multiresolution.MultiResolutionAdaWave` runs it once
  per decomposition level over one shared quantization;
* the :mod:`repro.tune` sweep runs it once per grid-pyramid level, which is
  what makes evaluating many resolutions cost ``O(cells)`` each instead of a
  full refit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.threshold import ThresholdDiagnostics, adaptive_threshold
from repro.core.transform import Workspace, wavelet_smooth_grid
from repro.grid.connectivity import label_components_array
from repro.grid.sparse_grid import SparseGrid
from repro.obs.trace import StageTimer
from repro.wavelets.backends import resolve_backend
from repro.wavelets.thresholding import LevelPolicy

#: Dimensionalities up to which ``connectivity="auto"`` resolves to "full".
_FULL_CONNECTIVITY_MAX_DIM = 3

THRESHOLD_METHODS = ("auto", "segments", "angle", "distance", "none")
CONNECTIVITIES = ("auto", "face", "full")

#: Relative epsilon of the survivor cut: transformed densities within this
#: relative distance of the selected threshold count as *at* the threshold
#: (pruned).  Transform backends round the same coefficient differently at
#: the last few ulps, so without the snap an exact density tie at the
#: threshold could survive under one backend and fall under another.
_TIE_SNAP_RELATIVE = 1e-9


def snapped_cut(threshold: float) -> float:
    """Tie-stable survivor cut for a selected density threshold.

    Cells survive when their density exceeds ``threshold`` by more than a
    relative epsilon, so the survivor set is identical across registered
    transform backends even when their rounding differs on exact ties.
    Shared by the vectorized extraction and the reference engine.
    """
    return threshold + _TIE_SNAP_RELATIVE * max(1.0, abs(threshold))


def resolve_connectivity(connectivity: str, ndim: int) -> str:
    """Resolve ``"auto"`` connectivity: full for up to 3-D data, face beyond."""
    if connectivity != "auto":
        return connectivity
    return "full" if ndim <= _FULL_CONNECTIVITY_MAX_DIM else "face"


def select_threshold(
    transformed: SparseGrid, method: str, angle_divisor: float = 3.0
) -> ThresholdDiagnostics:
    """Pick the density threshold on a transformed grid (Algorithm 4)."""
    if method not in THRESHOLD_METHODS:
        raise ValueError(
            f"threshold_method must be one of {THRESHOLD_METHODS}; got {method!r}."
        )
    densities = transformed.densities()
    if method == "none":
        sorted_densities = np.sort(densities)[::-1]
        return ThresholdDiagnostics(
            threshold=0.0, index=len(densities) - 1, method="none",
            sorted_densities=sorted_densities,
        )
    if method == "distance":
        from repro.core.threshold import elbow_threshold_distance

        return elbow_threshold_distance(densities)
    if method == "segments":
        from repro.core.threshold import elbow_threshold_segments

        return elbow_threshold_segments(densities)
    if method == "angle":
        from repro.core.threshold import elbow_threshold_angle

        diagnostics = elbow_threshold_angle(densities, angle_divisor=angle_divisor)
        if diagnostics is None:
            raise RuntimeError(
                "the angle criterion did not trigger; use threshold_method='auto' "
                "to fall back to the chord rule."
            )
        return diagnostics
    return adaptive_threshold(densities, angle_divisor=angle_divisor)


def extract_clusters(
    transformed: SparseGrid,
    threshold: float,
    ndim: int,
    connectivity: str,
    min_cluster_cells: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Surviving transformed cells and their component labels (vectorized).

    Prunes cells at or below ``threshold`` (with the tie-stable
    :func:`snapped_cut`, so backend rounding cannot flip exact density
    ties), labels the connected components of the survivors and drops
    components smaller than ``min_cluster_cells`` (relabelling the
    remainder to a dense ``0..k-1`` range).  Returns the ``(k, d)``
    surviving coordinates and the aligned ``(k,)`` labels.
    """
    surviving = transformed.prune(snapped_cut(threshold))
    coords = surviving.coords
    if len(coords) == 0:
        return coords, np.empty(0, dtype=np.int64)
    resolved = resolve_connectivity(connectivity, ndim)
    labels = label_components_array(coords, connectivity=resolved)
    if min_cluster_cells > 1 and len(labels):
        counts = np.bincount(labels)
        keep = counts >= min_cluster_cells
        if not keep.all():
            relabel = np.cumsum(keep) - 1
            cell_keep = keep[labels]
            coords = coords[cell_keep]
            labels = relabel[labels[cell_keep]]
    return coords, labels


@dataclass
class GridPipelineResult:
    """Everything the grid-side stages produce for one (grid, level) run.

    ``cell_coords``/``cell_labels`` are the surviving transformed cells and
    their cluster ids; ``n_clusters`` counts the distinct ids.  The result is
    point-free: mapping objects to labels is a separate lookup against
    ``cell_coords``.

    ``stage_seconds`` is the wall-clock breakdown of this run over the three
    grid-side stages (``transform`` / ``threshold`` / ``extract``) -- the
    same shape of record the serving plane keeps per request, here available
    for tuning provenance and artifact metadata.  ``backend`` records which
    transform backend produced the coefficients, ``wavelet`` the basis and
    ``threshold_policy`` the canonical level-policy name the run used
    (provenance for artifacts).
    """

    transformed: SparseGrid
    threshold: ThresholdDiagnostics
    cell_coords: np.ndarray
    cell_labels: np.ndarray
    n_clusters: int
    level: int
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    backend: str = "numpy"
    wavelet: str = "bior2.2"
    threshold_policy: str = "global-hard"


def run_grid_pipeline(
    grid: SparseGrid,
    *,
    wavelet="bior2.2",
    level: int = 1,
    threshold="hard",
    threshold_method: str = "auto",
    connectivity: str = "auto",
    min_cluster_cells: int = 3,
    angle_divisor: float = 3.0,
    workspace: Optional[Workspace] = None,
    timer: Optional[StageTimer] = None,
    backend=None,
) -> GridPipelineResult:
    """Run transform, threshold and component extraction on one grid.

    Cost is ``O(occupied cells * scale)`` -- it never touches the points, so
    callers holding one quantization can afford to run it many times (per
    decomposition level, per pyramid resolution, ...).

    Pass a :class:`~repro.obs.trace.StageTimer` as ``timer`` to accumulate
    the per-stage wall clock across *many* runs (a pyramid sweep, a
    multi-level decomposition); the per-run breakdown is always available on
    ``GridPipelineResult.stage_seconds`` regardless.

    ``backend`` selects the transform kernel (``None`` / ``"auto"`` picks the
    fastest registered backend supporting ``wavelet``; see
    :mod:`repro.wavelets.backends`).  The resolved name is recorded on the
    result for provenance.

    ``threshold`` selects the denoising level policy
    (:class:`~repro.wavelets.LevelPolicy` or one of its spellings --
    ``"hard"``, ``"soft"``, ``"per-level-hard"``, ``"per-level-soft"``).
    The default ``"hard"`` (global-hard) is the paper's pipeline: the
    adaptive elbow criterion is itself the global hard cut, so no extra
    wavelet-domain pass runs.  The other policies add a MAD-scaled
    VisuShrink shrinkage in the wavelet domain before the elbow; the elbow
    selection (``threshold_method``) and survivor extraction are unchanged.
    """
    policy = LevelPolicy.parse(threshold)
    resolved_backend = resolve_backend(backend, wavelet)
    run_timer = StageTimer()
    with run_timer.stage("transform"):
        transformed, _shape = wavelet_smooth_grid(
            grid, wavelet=wavelet, level=level, workspace=workspace,
            backend=resolved_backend,
            shrink=policy if policy.denoises else None,
        )
    with run_timer.stage("threshold"):
        diagnostics = select_threshold(transformed, threshold_method, angle_divisor)
    with run_timer.stage("extract"):
        cell_coords, cell_labels = extract_clusters(
            transformed, diagnostics.threshold, grid.ndim, connectivity,
            min_cluster_cells,
        )
    n_clusters = int(cell_labels.max()) + 1 if len(cell_labels) else 0
    if timer is not None:
        for name, seconds in run_timer.seconds.items():
            timer.add(name, seconds)
    return GridPipelineResult(
        transformed=transformed,
        threshold=diagnostics,
        cell_coords=cell_coords,
        cell_labels=cell_labels,
        n_clusters=n_clusters,
        level=level,
        stage_seconds=run_timer.as_dict(),
        backend=resolved_backend.name,
        wavelet=getattr(wavelet, "name", None) or str(wavelet),
        threshold_policy=policy.name,
    )
