"""Lifting-scheme implementations of the CDF wavelets.

The lifting scheme (Sweldens) factors a wavelet filter bank into a sequence
of predict / update steps on the even and odd polyphase components.  Each
step is trivially invertible, so perfect reconstruction holds by construction
and the transform runs in-place in O(n).

Two transforms are provided:

* :func:`lifting_cdf53` / :func:`inverse_lifting_cdf53` -- the CDF(2,2)
  LeGall 5/3 wavelet the paper uses, with rational lifting coefficients.
* :func:`lifting_cdf97` / :func:`inverse_lifting_cdf97` -- the CDF 9/7
  wavelet (JPEG 2000 irreversible transform), provided as an alternative
  smoother basis for the multi-resolution experiments.

Both operate on even-length signals with periodic boundary handling, matching
the ``periodization`` mode of :mod:`repro.wavelets.dwt`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

# CDF 9/7 lifting constants (Daubechies & Sweldens 1998).
_ALPHA = -1.586134342059924
_BETA = -0.052980118572961
_GAMMA = 0.882911075530934
_DELTA = 0.443506852043971
_ZETA = 1.149604398860241


def _split(signal) -> Tuple[np.ndarray, np.ndarray]:
    arr = np.asarray(signal, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D signal; got shape {arr.shape}.")
    if len(arr) % 2 != 0 or len(arr) < 2:
        raise ValueError(
            f"lifting transforms require an even-length signal of at least 2 samples; got {len(arr)}."
        )
    return arr[0::2].copy(), arr[1::2].copy()


def _merge(even: np.ndarray, odd: np.ndarray) -> np.ndarray:
    signal = np.empty(2 * len(even))
    signal[0::2] = even
    signal[1::2] = odd
    return signal


def lifting_cdf53(signal) -> Tuple[np.ndarray, np.ndarray]:
    """Forward LeGall 5/3 (CDF(2,2)) lifting transform.

    Returns ``(approx, detail)`` with the same ``sqrt(2)`` normalisation as
    the convolution implementation, so energy comparisons across the two code
    paths are direct.
    """
    even, odd = _split(signal)
    # Predict: detail = odd - average of the two neighbouring evens.
    odd -= 0.5 * (even + np.roll(even, -1))
    # Update: approximation = even + quarter of the two neighbouring details.
    even += 0.25 * (odd + np.roll(odd, 1))
    return even * np.sqrt(2.0), odd / np.sqrt(2.0)


def inverse_lifting_cdf53(approx, detail) -> np.ndarray:
    """Exact inverse of :func:`lifting_cdf53`."""
    even = np.asarray(approx, dtype=np.float64) / np.sqrt(2.0)
    odd = np.asarray(detail, dtype=np.float64) * np.sqrt(2.0)
    if len(even) != len(odd):
        raise ValueError(f"cA and cD must have equal length; got {len(even)} and {len(odd)}.")
    even = even - 0.25 * (odd + np.roll(odd, 1))
    odd = odd + 0.5 * (even + np.roll(even, -1))
    return _merge(even, odd)


def lifting_cdf97(signal) -> Tuple[np.ndarray, np.ndarray]:
    """Forward CDF 9/7 lifting transform (JPEG 2000 irreversible filter)."""
    even, odd = _split(signal)
    odd += _ALPHA * (even + np.roll(even, -1))
    even += _BETA * (odd + np.roll(odd, 1))
    odd += _GAMMA * (even + np.roll(even, -1))
    even += _DELTA * (odd + np.roll(odd, 1))
    return even * _ZETA, odd / _ZETA


def inverse_lifting_cdf97(approx, detail) -> np.ndarray:
    """Exact inverse of :func:`lifting_cdf97`."""
    even = np.asarray(approx, dtype=np.float64) / _ZETA
    odd = np.asarray(detail, dtype=np.float64) * _ZETA
    if len(even) != len(odd):
        raise ValueError(f"cA and cD must have equal length; got {len(even)} and {len(odd)}.")
    even = even - _DELTA * (odd + np.roll(odd, 1))
    odd = odd - _GAMMA * (even + np.roll(even, -1))
    even = even - _BETA * (odd + np.roll(odd, 1))
    odd = odd - _ALPHA * (even + np.roll(even, -1))
    return _merge(even, odd)


def lifting_smooth(signal, *, transform: str = "cdf53", level: int = 1) -> np.ndarray:
    """Low-pass smooth a signal with repeated lifting analysis / synthesis.

    Equivalent to :func:`repro.wavelets.dwt.smooth_signal` but using the
    lifting fast path; details are zeroed at every level.
    """
    arr = np.asarray(signal, dtype=np.float64)
    if level < 1:
        raise ValueError(f"level must be >= 1; got {level}.")
    if transform == "cdf53":
        forward, inverse = lifting_cdf53, inverse_lifting_cdf53
    elif transform == "cdf97":
        forward, inverse = lifting_cdf97, inverse_lifting_cdf97
    else:
        raise ValueError(f"transform must be 'cdf53' or 'cdf97'; got {transform!r}.")

    original_length = len(arr)
    padded = arr if original_length % 2 == 0 else np.concatenate([arr, arr[-1:]])
    approx_stack = []
    current = padded
    for _ in range(level):
        if len(current) < 2 or len(current) % 2 != 0:
            break
        approx, _detail = forward(current)
        approx_stack.append(len(current))
        current = approx
    for length in reversed(approx_stack):
        current = inverse(current, np.zeros_like(current))[:length]
    return current[:original_length]
