"""Pluggable transform backends for the batched low-pass hot path.

The grid transform (:mod:`repro.core.transform`) only ever consumes the
approximation (low-pass) half of the DWT -- Algorithm 3 keeps the scale
space and discards the detail coefficients unconditionally.  That makes the
per-axis pass a pure ``approx_batch(matrix, wavelet) -> approx`` problem,
which different kernels can solve at very different speeds:

* :class:`NumpyBackend` -- the always-available reference: periodized
  gather + matmul via :func:`repro.wavelets.dwt.dwt_batch` with
  ``approx_only=True``.
* :class:`LiftingBackend` -- batched lifting-scheme kernels (Daubechies &
  Sweldens' factoring) for the Haar / CDF 5/3 / CDF 9/7 families.  The
  predict / update steps are vectorized across the whole ``(n_lines,
  scale)`` line matrix and the detail half is only ever an intermediate of
  the update step -- it is never gathered, convolved or returned.
* :class:`NumbaBackend` -- the same lifting kernels jitted with numba,
  auto-registered only when ``import numba`` succeeds so tier-1 stays
  pure-numpy.

Backends register themselves in a process-wide registry; ``"auto"``
resolution picks the highest-priority registered backend that supports the
requested wavelet.  Every backend is pinned against the reference by the
equivalence suite (``tests/test_wavelet_backends.py``): Haar bit-for-bit,
CDF 5/3 and CDF 9/7 within 1e-9.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from repro.wavelets.dwt import dwt_batch
from repro.wavelets.filters import Wavelet, build_wavelet
from repro.wavelets.lifting import _ALPHA, _BETA, _DELTA, _GAMMA, _ZETA

_SQRT2 = np.sqrt(2.0)


class TransformBackend:
    """Protocol for batched approximation-only transform kernels.

    Subclasses set :attr:`name` (registry key) and :attr:`priority` (higher
    wins ``"auto"`` resolution) and implement :meth:`supports` plus
    :meth:`approx_batch`.  The contract for ``approx_batch`` is: given a 2-D
    ``(batch, n)`` matrix it returns exactly what
    ``dwt_batch(matrix, wavelet)[0]`` would -- same shape ``(batch,
    ceil(n / 2))``, same odd-length padding (repeat the last sample), same
    periodic boundary handling.
    """

    name: str = ""
    priority: int = 0

    def supports(self, wavelet) -> bool:
        """Whether this backend can transform with ``wavelet``."""
        raise NotImplementedError

    def approx_batch(self, matrix, wavelet) -> np.ndarray:
        """Low-pass transform every row of ``matrix``; return the cA block."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, priority={self.priority})"


def _as_line_matrix(matrix) -> np.ndarray:
    """Validate + normalise input exactly like :func:`dwt_batch` does."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"signals must be a 2-D (batch, n) array; got shape {matrix.shape}.")
    if matrix.shape[1] == 0:
        raise ValueError("cannot transform empty signals.")
    if matrix.shape[1] % 2 == 1:
        matrix = np.concatenate([matrix, matrix[:, -1:]], axis=1)
    return matrix


def _canonical_name(wavelet) -> str:
    return wavelet.name if isinstance(wavelet, Wavelet) else build_wavelet(wavelet).name


class NumpyBackend(TransformBackend):
    """Reference backend: periodized gather-index convolution (`dwt_batch`)."""

    name = "numpy"
    priority = 0

    def supports(self, wavelet) -> bool:
        try:
            build_wavelet(wavelet)
        except (ValueError, TypeError):
            return False
        return True

    def approx_batch(self, matrix, wavelet) -> np.ndarray:
        return dwt_batch(matrix, wavelet, approx_only=True)


# Wavelets the lifting kernels cover, keyed by canonical filter-bank name.
_LIFTING_KERNELS = ("db1", "bior1.1", "bior2.2", "bior4.4")


def _lift_haar(matrix: np.ndarray, dec_lo: np.ndarray) -> np.ndarray:
    # The Haar pairs are adjacent samples, so the polyphase split is a free
    # contiguous reshape -- no gather copy, no detail half.  Keeping the
    # reduction as the same contiguous stacked matmul the reference uses is
    # what makes this path bit-identical to ``dwt_batch`` for every shape
    # (an elementwise even*h0 + odd*h1 rounds differently).
    matrix = np.ascontiguousarray(matrix)
    pairs = matrix.reshape(matrix.shape[0], matrix.shape[1] // 2, 2)
    return pairs @ dec_lo


def _lift_cdf53(matrix: np.ndarray) -> np.ndarray:
    even = np.ascontiguousarray(matrix[:, 0::2])
    odd = np.ascontiguousarray(matrix[:, 1::2])
    # Predict: detail = odd - average of the two neighbouring evens.
    odd -= 0.5 * (even + np.roll(even, -1, axis=1))
    # Update: approximation = even + quarter of the two neighbouring details.
    even += 0.25 * (odd + np.roll(odd, 1, axis=1))
    even *= _SQRT2
    return even


def _lift_cdf97(matrix: np.ndarray) -> np.ndarray:
    even = np.ascontiguousarray(matrix[:, 0::2])
    odd = np.ascontiguousarray(matrix[:, 1::2])
    odd += _ALPHA * (even + np.roll(even, -1, axis=1))
    even += _BETA * (odd + np.roll(odd, 1, axis=1))
    odd += _GAMMA * (even + np.roll(even, -1, axis=1))
    even += _DELTA * (odd + np.roll(odd, 1, axis=1))
    even *= _ZETA
    return even


class LiftingBackend(TransformBackend):
    """Batched in-place lifting kernels for Haar / CDF 5/3 / CDF 9/7."""

    name = "lifting"
    priority = 10

    def supports(self, wavelet) -> bool:
        try:
            canonical = _canonical_name(wavelet)
        except (ValueError, TypeError):
            return False
        return canonical in _LIFTING_KERNELS

    def approx_batch(self, matrix, wavelet) -> np.ndarray:
        bank = build_wavelet(wavelet)
        matrix = _as_line_matrix(matrix)
        if bank.name in ("db1", "bior1.1"):
            return _lift_haar(matrix, bank.dec_lo)
        if bank.name == "bior2.2":
            return _lift_cdf53(matrix)
        if bank.name == "bior4.4":
            return _lift_cdf97(matrix)
        raise ValueError(
            f"lifting backend has no kernel for wavelet {bank.name!r}; "
            f"supported: {', '.join(_LIFTING_KERNELS)}."
        )


def _build_numba_kernels():  # pragma: no cover - exercised only when numba exists
    """Compile the lifting kernels with numba; raise ImportError when absent."""
    import numba  # noqa: F401  -- hard gate: no numba, no backend

    from numba import njit, prange

    @njit(cache=True, parallel=True)
    def haar_kernel(matrix, scale, out):
        for i in prange(matrix.shape[0]):
            for j in range(out.shape[1]):
                out[i, j] = matrix[i, 2 * j] * scale + matrix[i, 2 * j + 1] * scale

    @njit(cache=True, parallel=True)
    def cdf53_kernel(matrix, out):
        half = out.shape[1]
        for i in prange(matrix.shape[0]):
            detail = np.empty(half)
            for j in range(half):
                detail[j] = matrix[i, 2 * j + 1] - 0.5 * (
                    matrix[i, 2 * j] + matrix[i, (2 * j + 2) % (2 * half)]
                )
            for j in range(half):
                out[i, j] = (
                    matrix[i, 2 * j] + 0.25 * (detail[j] + detail[(j - 1) % half])
                ) * np.sqrt(2.0)

    @njit(cache=True, parallel=True)
    def cdf97_kernel(matrix, alpha, beta, gamma, delta, zeta, out):
        half = out.shape[1]
        for i in prange(matrix.shape[0]):
            even = np.empty(half)
            odd = np.empty(half)
            for j in range(half):
                even[j] = matrix[i, 2 * j]
                odd[j] = matrix[i, 2 * j + 1]
            for j in range(half):
                odd[j] += alpha * (even[j] + even[(j + 1) % half])
            for j in range(half):
                even[j] += beta * (odd[j] + odd[(j - 1) % half])
            for j in range(half):
                odd[j] += gamma * (even[j] + even[(j + 1) % half])
            for j in range(half):
                out[i, j] = (even[j] + delta * (odd[j] + odd[(j - 1) % half])) * zeta

    return haar_kernel, cdf53_kernel, cdf97_kernel


class NumbaBackend(TransformBackend):
    """Numba-jitted lifting kernels; only registered when numba imports."""

    name = "numba"
    priority = 20

    def __init__(self) -> None:
        self._haar, self._cdf53, self._cdf97 = _build_numba_kernels()

    def supports(self, wavelet) -> bool:
        try:
            canonical = _canonical_name(wavelet)
        except (ValueError, TypeError):
            return False
        return canonical in _LIFTING_KERNELS

    def approx_batch(self, matrix, wavelet) -> np.ndarray:  # pragma: no cover
        bank = build_wavelet(wavelet)
        matrix = np.ascontiguousarray(_as_line_matrix(matrix))
        out = np.empty((matrix.shape[0], matrix.shape[1] // 2))
        if bank.name in ("db1", "bior1.1"):
            self._haar(matrix, float(bank.dec_lo[0]), out)
        elif bank.name == "bior2.2":
            self._cdf53(matrix, out)
        elif bank.name == "bior4.4":
            self._cdf97(matrix, _ALPHA, _BETA, _GAMMA, _DELTA, _ZETA, out)
        else:
            raise ValueError(
                f"numba backend has no kernel for wavelet {bank.name!r}; "
                f"supported: {', '.join(_LIFTING_KERNELS)}."
            )
        return out


_REGISTRY: Dict[str, TransformBackend] = {}


def register_backend(backend: TransformBackend, *, overwrite: bool = False) -> TransformBackend:
    """Add ``backend`` to the process-wide registry and return it."""
    if not isinstance(backend, TransformBackend):
        raise TypeError(
            f"backend must be a TransformBackend instance; got {type(backend).__name__}."
        )
    if not backend.name:
        raise ValueError("backend.name must be a non-empty string.")
    if backend.name in _REGISTRY and not overwrite:
        raise ValueError(
            f"backend {backend.name!r} is already registered; pass overwrite=True to replace it."
        )
    _REGISTRY[backend.name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (no-op if absent, numpy protected)."""
    if name == "numpy":
        raise ValueError("the numpy reference backend cannot be unregistered.")
    _REGISTRY.pop(name, None)


def available_backends() -> List[str]:
    """Registered backend names, highest auto-resolution priority first."""
    return [b.name for b in sorted(_REGISTRY.values(), key=lambda b: (-b.priority, b.name))]


def get_backend(name: str) -> TransformBackend:
    """Look up a registered backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"Unknown transform backend {name!r}. Registered: {', '.join(available_backends())}."
        ) from None


def resolve_backend(
    backend: Union[None, str, TransformBackend], wavelet
) -> TransformBackend:
    """Resolve a user-facing backend spec against the registry for ``wavelet``.

    ``None`` and ``"auto"`` pick the highest-priority registered backend that
    supports ``wavelet`` (the numpy reference supports everything, so this
    always succeeds for a valid wavelet).  A name selects that backend and
    raises if it cannot handle the wavelet; an explicit
    :class:`TransformBackend` instance is validated the same way.
    """
    if backend is None or backend == "auto":
        for candidate in sorted(_REGISTRY.values(), key=lambda b: (-b.priority, b.name)):
            if candidate.supports(wavelet):
                return candidate
        raise ValueError(
            f"No registered transform backend supports wavelet {wavelet!r}."
        )
    if isinstance(backend, str):
        resolved: Optional[TransformBackend] = get_backend(backend)
    elif isinstance(backend, TransformBackend):
        resolved = backend
    else:
        raise TypeError(
            "backend must be None, 'auto', a backend name or a TransformBackend "
            f"instance; got {type(backend).__name__}."
        )
    if not resolved.supports(wavelet):
        raise ValueError(
            f"Transform backend {resolved.name!r} does not support wavelet "
            f"{wavelet!r}; use backend='numpy' or backend='auto'."
        )
    return resolved


register_backend(NumpyBackend())
register_backend(LiftingBackend())
try:  # optional accelerator: tier-1 environments stay pure-numpy
    register_backend(NumbaBackend())
except ImportError:
    pass
