"""Coefficient thresholding rules used for wavelet denoising.

After the wavelet transform, AdaWave removes the wavelet (detail)
coefficients and the *low-value* scaling coefficients -- "removing the
low-value coefficients is an effective denoising method" (Section III-B).
This module collects the standard thresholding rules the library exposes for
that step and for the WaveCluster baseline:

* hard thresholding -- zero every coefficient whose magnitude is below the
  threshold, keep the rest unchanged;
* soft thresholding -- additionally shrink the surviving coefficients toward
  zero by the threshold (Donoho-Johnstone);
* the universal (VisuShrink) threshold ``sigma * sqrt(2 log n)`` with a
  median-absolute-deviation noise estimate;
* percentile thresholding, the rule WaveCluster applies to grid densities;
* level-dependent application: :class:`LevelPolicy` describes whether the
  noise scale is estimated once for the whole decomposition or re-estimated
  per wavelet level (WaveLab's MultiMAD convention), and whether the cut is
  hard or soft.  :func:`level_thresholds` / :func:`threshold_levels` apply a
  policy to a sequence of per-level coefficient bands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

import numpy as np

#: Valid cut rules for a :class:`LevelPolicy`.
THRESHOLD_RULES = ("hard", "soft")

#: Valid noise-scale estimation modes for a :class:`LevelPolicy`.
LEVEL_MODES = ("global", "per-level")

#: Canonical names of every level policy, default first (the tuning sweep's
#: ``threshold="tune"`` axis and the set :meth:`repro.serve.ClusterModel.load`
#: accepts as ``threshold_method`` metadata).
THRESHOLD_POLICY_NAMES = (
    "global-hard",
    "global-soft",
    "per-level-hard",
    "per-level-soft",
)

#: Shorthand spellings accepted by :meth:`LevelPolicy.parse` in addition to
#: the canonical names: a bare rule means global application.
_POLICY_ALIASES = {"hard": "global-hard", "soft": "global-soft"}


def _check_threshold(threshold: float) -> float:
    """Validate a threshold value *before* touching any coefficient array.

    Rejects NaN explicitly: ``NaN < 0`` is false and ``|x| < NaN`` is false
    everywhere, so an unvalidated NaN would silently keep every coefficient.
    """
    threshold = float(threshold)
    if np.isnan(threshold):
        raise ValueError(
            "threshold is NaN; a NaN cut would silently keep every "
            "coefficient. Check the noise-scale estimate that produced it."
        )
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative; got {threshold}.")
    return threshold


def hard_threshold(values, threshold: float) -> np.ndarray:
    """Zero every entry with ``|value| < threshold``; keep the rest unchanged."""
    threshold = _check_threshold(threshold)
    arr = np.asarray(values, dtype=np.float64)
    result = arr.copy()
    result[np.abs(result) < threshold] = 0.0
    return result


def soft_threshold(values, threshold: float) -> np.ndarray:
    """Shrink entries toward zero by ``threshold`` and zero the rest.

    ``sign(x) * max(|x| - threshold, 0)`` -- the Donoho-Johnstone soft rule.
    """
    threshold = _check_threshold(threshold)
    arr = np.asarray(values, dtype=np.float64)
    return np.sign(arr) * np.maximum(np.abs(arr) - threshold, 0.0)


def mad_sigma(values) -> float:
    """Robust noise-scale estimate ``MAD / 0.6745`` with a std fallback.

    On sparse-grid densities the median absolute deviation collapses to zero
    whenever at least half the coefficients share the median value -- the
    common case, which previously made the universal threshold a silent
    no-op.  When the MAD collapses the estimate falls back to the standard
    deviation; only genuinely constant input (no spread at all) raises.
    """
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot estimate a noise scale from an empty array.")
    mad = float(np.median(np.abs(arr - np.median(arr))))
    if mad > 0.0:
        return mad / 0.6745
    std = float(arr.std())
    if std > 0.0:
        return std
    raise ValueError(
        "cannot estimate a noise scale from constant input: every "
        "coefficient equals the median, so both the MAD and the standard "
        "deviation are zero."
    )


def universal_threshold(values) -> float:
    """Donoho-Johnstone universal (VisuShrink) threshold ``sigma * sqrt(2 ln n)``.

    The noise scale ``sigma`` comes from :func:`mad_sigma`: MAD / 0.6745,
    falling back to the standard deviation when the MAD collapses (at least
    half the coefficients equal to the median).  Raises ``ValueError`` for
    empty or constant input, where no scale is estimable.
    """
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot estimate a threshold from an empty array.")
    sigma = mad_sigma(arr)
    return float(sigma * np.sqrt(2.0 * np.log(max(arr.size, 2))))


def percentile_threshold(values, percentile: float) -> float:
    """Threshold equal to the ``percentile``-th percentile of ``|values|``.

    WaveCluster removes grid cells whose transformed density falls below a
    fixed quantile of the non-zero densities; AdaWave replaces this fixed rule
    with the adaptive elbow criterion of :mod:`repro.core.threshold`.
    """
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot compute a percentile of an empty array.")
    if not 0.0 <= percentile <= 100.0:
        raise ValueError(f"percentile must be in [0, 100]; got {percentile}.")
    return float(np.percentile(np.abs(arr), percentile))


@dataclass(frozen=True)
class LevelPolicy:
    """How the MAD-scaled VisuShrink denoising applies across wavelet levels.

    ``rule`` is the cut (``"hard"`` zeroes sub-threshold coefficients,
    ``"soft"`` additionally shrinks the survivors); ``mode`` is where the
    noise scale comes from (``"global"`` estimates one pooled sigma for the
    whole decomposition, ``"per-level"`` re-estimates it from each level's
    own coefficients -- WaveLab's MultiMAD convention, which adapts to
    noise whose energy varies across scales).

    Inside the grid pipeline the policies map onto the paper's stages as
    follows: the elbow criterion (Algorithm 4) *is* the global hard rule --
    a data-driven global hard threshold on the transformed densities -- so
    ``global-hard`` (the default) adds no extra wavelet-domain pass and
    reproduces the paper's pipeline exactly.  The other three policies add a
    MAD-scaled VisuShrink pass in the wavelet domain before the elbow runs:
    ``global-soft`` once on the final approximation band, the per-level
    policies after every decomposition level.
    """

    rule: str = "hard"
    mode: str = "global"

    def __post_init__(self) -> None:
        if self.rule not in THRESHOLD_RULES:
            raise ValueError(
                f"rule must be one of {THRESHOLD_RULES}; got {self.rule!r}."
            )
        if self.mode not in LEVEL_MODES:
            raise ValueError(
                f"mode must be one of {LEVEL_MODES}; got {self.mode!r}."
            )

    @property
    def name(self) -> str:
        """Canonical ``"<mode>-<rule>"`` spelling (e.g. ``"per-level-soft"``)."""
        return f"{self.mode}-{self.rule}"

    @property
    def denoises(self) -> bool:
        """Whether this policy adds a wavelet-domain MAD pass in the pipeline.

        ``global-hard`` does not: the elbow criterion already is the global
        hard cut, applied downstream on the transformed densities.
        """
        return not (self.rule == "hard" and self.mode == "global")

    @classmethod
    def parse(cls, spec: Union[str, "LevelPolicy"]) -> "LevelPolicy":
        """Resolve a policy spec: an instance, a canonical name, or a bare rule.

        ``"hard"`` / ``"soft"`` mean global application; the canonical
        ``"global-hard"`` / ``"global-soft"`` / ``"per-level-hard"`` /
        ``"per-level-soft"`` names select explicitly.  Anything else raises
        ``ValueError`` listing the options.
        """
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, str):
            canonical = _POLICY_ALIASES.get(spec, spec)
            if canonical in THRESHOLD_POLICY_NAMES:
                mode, _, rule = canonical.rpartition("-")
                return cls(rule=rule, mode=mode)
        options = THRESHOLD_POLICY_NAMES + tuple(_POLICY_ALIASES)
        raise ValueError(
            f"threshold must be a LevelPolicy or one of {options}; got {spec!r}."
        )


def level_thresholds(
    bands: Sequence[np.ndarray], mode: str = "per-level"
) -> List[float]:
    """VisuShrink threshold per wavelet level under the given estimation mode.

    With ``mode="per-level"`` each band gets ``mad_sigma(band) *
    sqrt(2 ln n_band)`` from its own coefficients; with ``mode="global"``
    one pooled sigma is estimated from all bands together and combined with
    each band's own ``sqrt(2 ln n_band)`` factor.  When every band holds the
    same coefficients the two modes agree exactly (pooling preserves the
    median and the MAD of a repeated multiset; under the std fallback the
    agreement is to floating-point roundoff).  Bands whose
    noise scale is unestimable (empty or constant) get threshold 0.0 -- a
    no-op cut -- rather than failing the whole decomposition.
    """
    if mode not in LEVEL_MODES:
        raise ValueError(f"mode must be one of {LEVEL_MODES}; got {mode!r}.")
    arrays = [np.asarray(band, dtype=np.float64).ravel() for band in bands]
    if mode == "global":
        pooled = np.concatenate(arrays) if arrays else np.empty(0)
        try:
            sigma = mad_sigma(pooled)
        except ValueError:
            sigma = 0.0
        return [
            float(sigma * np.sqrt(2.0 * np.log(max(arr.size, 2))))
            for arr in arrays
        ]
    thresholds = []
    for arr in arrays:
        try:
            thresholds.append(universal_threshold(arr))
        except ValueError:
            thresholds.append(0.0)
    return thresholds


def threshold_levels(
    bands: Sequence[np.ndarray],
    policy: Union[str, LevelPolicy],
    thresholds: Sequence[float] = None,
) -> List[np.ndarray]:
    """Apply a :class:`LevelPolicy` to per-level coefficient bands.

    ``thresholds`` overrides the per-band cut values (mostly for tests);
    by default they come from :func:`level_thresholds` under the policy's
    mode.  Returns one thresholded array per input band.
    """
    policy = LevelPolicy.parse(policy)
    if thresholds is None:
        thresholds = level_thresholds(bands, policy.mode)
    elif len(thresholds) != len(bands):
        raise ValueError(
            f"got {len(thresholds)} thresholds for {len(bands)} bands."
        )
    apply_rule = soft_threshold if policy.rule == "soft" else hard_threshold
    return [apply_rule(band, cut) for band, cut in zip(bands, thresholds)]


def threshold_coefficients(
    coefficients: Dict[str, np.ndarray],
    threshold: float,
    *,
    rule: str = "hard",
    keep_approximation: bool = True,
) -> Dict[str, np.ndarray]:
    """Apply a threshold rule to every subband of an n-D decomposition.

    Parameters
    ----------
    coefficients:
        Mapping of subband name to array, as returned by
        :func:`repro.wavelets.ndwt.dwtn`.
    threshold:
        Threshold value passed to the rule.
    rule:
        ``"hard"`` or ``"soft"``.
    keep_approximation:
        If true (default), the pure approximation band ``"aa...a"`` is left
        untouched -- only detail subbands are denoised, which matches the
        paper's "remove the wavelet coefficients" step.
    """
    if rule == "hard":
        apply_rule = hard_threshold
    elif rule == "soft":
        apply_rule = soft_threshold
    else:
        raise ValueError(f"rule must be 'hard' or 'soft'; got {rule!r}.")

    result: Dict[str, np.ndarray] = {}
    for key, band in coefficients.items():
        is_approximation = set(key) == {"a"}
        if keep_approximation and is_approximation:
            result[key] = np.asarray(band, dtype=np.float64).copy()
        else:
            result[key] = apply_rule(band, threshold)
    return result
