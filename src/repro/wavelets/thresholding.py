"""Coefficient thresholding rules used for wavelet denoising.

After the wavelet transform, AdaWave removes the wavelet (detail)
coefficients and the *low-value* scaling coefficients -- "removing the
low-value coefficients is an effective denoising method" (Section III-B).
This module collects the standard thresholding rules the library exposes for
that step and for the WaveCluster baseline:

* hard thresholding -- zero every coefficient whose magnitude is below the
  threshold, keep the rest unchanged;
* soft thresholding -- additionally shrink the surviving coefficients toward
  zero by the threshold (Donoho-Johnstone);
* the universal threshold ``sigma * sqrt(2 log n)`` with a median-absolute-
  deviation noise estimate;
* percentile thresholding, the rule WaveCluster applies to grid densities.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


def hard_threshold(values, threshold: float) -> np.ndarray:
    """Zero every entry with ``|value| < threshold``; keep the rest unchanged."""
    arr = np.asarray(values, dtype=np.float64)
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative; got {threshold}.")
    result = arr.copy()
    result[np.abs(result) < threshold] = 0.0
    return result


def soft_threshold(values, threshold: float) -> np.ndarray:
    """Shrink entries toward zero by ``threshold`` and zero the rest.

    ``sign(x) * max(|x| - threshold, 0)`` -- the Donoho-Johnstone soft rule.
    """
    arr = np.asarray(values, dtype=np.float64)
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative; got {threshold}.")
    return np.sign(arr) * np.maximum(np.abs(arr) - threshold, 0.0)


def universal_threshold(values) -> float:
    """Donoho-Johnstone universal threshold ``sigma * sqrt(2 ln n)``.

    The noise scale ``sigma`` is estimated robustly from the median absolute
    deviation of the coefficients (MAD / 0.6745).
    """
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot estimate a threshold from an empty array.")
    sigma = np.median(np.abs(arr - np.median(arr))) / 0.6745
    return float(sigma * np.sqrt(2.0 * np.log(max(arr.size, 2))))


def percentile_threshold(values, percentile: float) -> float:
    """Threshold equal to the ``percentile``-th percentile of ``|values|``.

    WaveCluster removes grid cells whose transformed density falls below a
    fixed quantile of the non-zero densities; AdaWave replaces this fixed rule
    with the adaptive elbow criterion of :mod:`repro.core.threshold`.
    """
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot compute a percentile of an empty array.")
    if not 0.0 <= percentile <= 100.0:
        raise ValueError(f"percentile must be in [0, 100]; got {percentile}.")
    return float(np.percentile(np.abs(arr), percentile))


def threshold_coefficients(
    coefficients: Dict[str, np.ndarray],
    threshold: float,
    *,
    rule: str = "hard",
    keep_approximation: bool = True,
) -> Dict[str, np.ndarray]:
    """Apply a threshold rule to every subband of an n-D decomposition.

    Parameters
    ----------
    coefficients:
        Mapping of subband name to array, as returned by
        :func:`repro.wavelets.ndwt.dwtn`.
    threshold:
        Threshold value passed to the rule.
    rule:
        ``"hard"`` or ``"soft"``.
    keep_approximation:
        If true (default), the pure approximation band ``"aa...a"`` is left
        untouched -- only detail subbands are denoised, which matches the
        paper's "remove the wavelet coefficients" step.
    """
    if rule == "hard":
        apply_rule = hard_threshold
    elif rule == "soft":
        apply_rule = soft_threshold
    else:
        raise ValueError(f"rule must be 'hard' or 'soft'; got {rule!r}.")

    result: Dict[str, np.ndarray] = {}
    for key, band in coefficients.items():
        is_approximation = set(key) == {"a"}
        if keep_approximation and is_approximation:
            result[key] = np.asarray(band, dtype=np.float64).copy()
        else:
            result[key] = apply_rule(band, threshold)
    return result
