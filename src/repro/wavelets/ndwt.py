"""Separable multi-dimensional discrete wavelet transforms.

Section III-A.2 of the paper describes the 2-D transform as two passes of the
1-D transform: convolve along ``x`` to obtain low-pass ``L`` and high-pass
``H`` spaces, downsample, then convolve each along ``y`` producing the four
subbands ``LL`` (average signal), ``LH`` (horizontal features), ``HL``
(vertical features) and ``HH`` (diagonal features).  The same procedure
generalises to ``d`` dimensions by applying the 1-D transform along every
axis in turn, which is exactly what AdaWave does on the quantized feature
space.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.wavelets.dwt import dwt, idwt
from repro.wavelets.filters import build_wavelet


def _apply_along_axis(func, array: np.ndarray, axis: int) -> np.ndarray:
    """Apply a 1-D -> 1-D function along ``axis`` of ``array``."""
    moved = np.moveaxis(array, axis, -1)
    flat = moved.reshape(-1, moved.shape[-1])
    transformed = np.stack([func(row) for row in flat])
    restored = transformed.reshape(moved.shape[:-1] + (transformed.shape[-1],))
    return np.moveaxis(restored, -1, axis)


def _dwt_axis(array: np.ndarray, wavelet, mode: str, axis: int) -> Tuple[np.ndarray, np.ndarray]:
    """Single-level DWT along one axis; returns the (approx, detail) arrays."""
    moved = np.moveaxis(array, axis, -1)
    flat = moved.reshape(-1, moved.shape[-1])
    approx_rows: List[np.ndarray] = []
    detail_rows: List[np.ndarray] = []
    for row in flat:
        approx, detail = dwt(row, wavelet, mode=mode)
        approx_rows.append(approx)
        detail_rows.append(detail)
    approx_arr = np.stack(approx_rows).reshape(moved.shape[:-1] + (len(approx_rows[0]),))
    detail_arr = np.stack(detail_rows).reshape(moved.shape[:-1] + (len(detail_rows[0]),))
    return np.moveaxis(approx_arr, -1, axis), np.moveaxis(detail_arr, -1, axis)


def _idwt_axis(
    approx: np.ndarray,
    detail: np.ndarray,
    wavelet,
    mode: str,
    axis: int,
    output_length: Optional[int],
) -> np.ndarray:
    """Inverse of :func:`_dwt_axis` along one axis."""
    approx_moved = np.moveaxis(approx, axis, -1)
    detail_moved = np.moveaxis(detail, axis, -1)
    flat_a = approx_moved.reshape(-1, approx_moved.shape[-1])
    flat_d = detail_moved.reshape(-1, detail_moved.shape[-1])
    rows = [
        idwt(a_row, d_row, wavelet, mode=mode, output_length=output_length)
        for a_row, d_row in zip(flat_a, flat_d)
    ]
    stacked = np.stack(rows).reshape(approx_moved.shape[:-1] + (len(rows[0]),))
    return np.moveaxis(stacked, -1, axis)


def dwtn(data, wavelet, mode: str = "periodization") -> Dict[str, np.ndarray]:
    """Single-level n-dimensional DWT.

    Returns a dict keyed by subband name: one letter per axis, ``"a"`` for the
    approximation (low-pass) branch and ``"d"`` for the detail (high-pass)
    branch.  For a 2-D input the keys are ``"aa"``, ``"ad"``, ``"da"`` and
    ``"dd"``, corresponding to the paper's ``LL``, ``LH``, ``HL``, ``HH``.
    """
    array = np.asarray(data, dtype=np.float64)
    if array.ndim < 1:
        raise ValueError("dwtn requires at least a 1-D array.")
    bank = build_wavelet(wavelet)
    subbands: Dict[str, np.ndarray] = {"": array}
    for axis in range(array.ndim):
        next_subbands: Dict[str, np.ndarray] = {}
        for key, band in subbands.items():
            approx, detail = _dwt_axis(band, bank, mode, axis)
            next_subbands[key + "a"] = approx
            next_subbands[key + "d"] = detail
        subbands = next_subbands
    return subbands


def idwtn(
    coefficients: Dict[str, np.ndarray],
    wavelet,
    mode: str = "periodization",
    output_shape: Optional[Tuple[int, ...]] = None,
) -> np.ndarray:
    """Inverse of :func:`dwtn`.

    Missing subbands are treated as zero, so passing only the ``"aa...a"``
    band reconstructs the low-pass smoothed array.
    """
    if not coefficients:
        raise ValueError("idwtn needs at least one subband.")
    bank = build_wavelet(wavelet)
    ndim = len(next(iter(coefficients)))
    if ndim == 0:
        raise ValueError("subband keys must have one letter per axis.")
    for key in coefficients:
        if len(key) != ndim or any(c not in "ad" for c in key):
            raise ValueError(f"invalid subband key {key!r}.")

    reference_shape = next(iter(coefficients.values())).shape
    current: Dict[str, np.ndarray] = {}
    for key in ("".join(bits) for bits in product("ad", repeat=ndim)):
        band = coefficients.get(key)
        current[key] = (
            np.zeros(reference_shape) if band is None else np.asarray(band, dtype=np.float64)
        )

    for axis in reversed(range(ndim)):
        length = None if output_shape is None else output_shape[axis]
        merged: Dict[str, np.ndarray] = {}
        prefixes = sorted({key[:axis] + key[axis + 1 :] for key in current})
        for reduced in prefixes:
            key_a = reduced[:axis] + "a" + reduced[axis:]
            key_d = reduced[:axis] + "d" + reduced[axis:]
            merged[reduced] = _idwt_axis(current[key_a], current[key_d], bank, mode, axis, length)
        current = merged
    return current[""]


def dwt2(data, wavelet, mode: str = "periodization") -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Single-level 2-D DWT returning ``(LL, (LH, HL, HH))``.

    ``LL`` is the average signal, ``LH`` the horizontal features, ``HL`` the
    vertical features and ``HH`` the diagonal features (paper Fig. 5).
    """
    array = np.asarray(data, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(f"dwt2 expects a 2-D array; got shape {array.shape}.")
    bands = dwtn(array, wavelet, mode=mode)
    return bands["aa"], (bands["ad"], bands["da"], bands["dd"])


def idwt2(
    approx,
    details: Tuple[np.ndarray, np.ndarray, np.ndarray],
    wavelet,
    mode: str = "periodization",
    output_shape: Optional[Tuple[int, int]] = None,
) -> np.ndarray:
    """Inverse 2-D DWT from ``(LL, (LH, HL, HH))``; ``None`` bands are zeros."""
    horizontal, vertical, diagonal = details
    reference = approx if approx is not None else next(
        band for band in (horizontal, vertical, diagonal) if band is not None
    )
    reference = np.asarray(reference, dtype=np.float64)
    bands = {
        "aa": np.asarray(approx, dtype=np.float64) if approx is not None else np.zeros(reference.shape),
        "ad": np.asarray(horizontal, dtype=np.float64) if horizontal is not None else np.zeros(reference.shape),
        "da": np.asarray(vertical, dtype=np.float64) if vertical is not None else np.zeros(reference.shape),
        "dd": np.asarray(diagonal, dtype=np.float64) if diagonal is not None else np.zeros(reference.shape),
    }
    return idwtn(bands, wavelet, mode=mode, output_shape=output_shape)


def smooth_nd(data, wavelet, level: int = 1, mode: str = "periodization") -> np.ndarray:
    """Low-pass smooth an n-dimensional array by repeated detail suppression.

    At every level the array is decomposed with :func:`dwtn`, every detail
    subband is discarded and the approximation band alone is reconstructed to
    the original shape.  This is the dense-array counterpart of the per-
    dimension smoothing AdaWave applies to its sparse grid and is what the
    WaveCluster baseline uses directly.
    """
    array = np.asarray(data, dtype=np.float64)
    if level < 1:
        raise ValueError(f"level must be >= 1; got {level}.")
    smoothed = array
    for _ in range(level):
        bands = dwtn(smoothed, wavelet, mode=mode)
        approx_key = "a" * array.ndim
        smoothed = idwtn({approx_key: bands[approx_key]}, wavelet, mode=mode, output_shape=array.shape)
    return smoothed
