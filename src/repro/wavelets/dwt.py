"""One-dimensional discrete wavelet transform (Mallat filter-bank algorithm).

The transforms follow the textbook analysis / synthesis scheme of Fig. 3 in
the paper: the signal is correlated with the analysis low-pass and high-pass
filters and downsampled by two; synthesis upsamples, filters with the dual
bank and sums.  Three boundary modes are provided:

``periodization``
    The signal is treated as one period of a periodic sequence.  This is the
    default mode: it is non-redundant (``len(cA) == ceil(n / 2)``) and gives
    exact perfect reconstruction for both orthogonal and biorthogonal banks.
``zero``
    The signal is extended with zeros.
``symmetric``
    The signal is extended by half-sample symmetric reflection.

``zero`` and ``symmetric`` produce the slightly redundant
``floor((n + L - 1) / 2)`` coefficients familiar from other wavelet
libraries; perfect reconstruction in those modes is guaranteed for the
orthogonal families.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.wavelets.filters import Wavelet, build_wavelet

_MODES = ("periodization", "zero", "symmetric")


def _check_mode(mode: str) -> str:
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}; got {mode!r}.")
    return mode


def _as_signal(data) -> np.ndarray:
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D signal; got shape {arr.shape}.")
    if arr.size == 0:
        raise ValueError("cannot transform an empty signal.")
    return arr


def _extend(signal: np.ndarray, pad: int, mode: str) -> np.ndarray:
    """Extend ``signal`` by ``pad`` samples on each side according to ``mode``."""
    if pad == 0:
        return signal
    if mode == "zero":
        return np.concatenate([np.zeros(pad), signal, np.zeros(pad)])
    if mode == "symmetric":
        n = len(signal)
        period = 2 * n
        left_positions = np.mod(np.arange(-pad, 0), period)
        right_positions = np.mod(np.arange(n, n + pad), period)
        left = signal[np.where(left_positions >= n, period - 1 - left_positions, left_positions)]
        right = signal[np.where(right_positions >= n, period - 1 - right_positions, right_positions)]
        return np.concatenate([left, signal, right])
    raise ValueError(f"unsupported extension mode {mode!r}.")


def dwt_max_level(data_length: int, filter_length: int) -> int:
    """Maximum useful number of decomposition levels for a signal.

    Mirrors the usual convention: the deepest level at which the
    approximation is still at least as long as the filter.
    """
    if filter_length < 2 or data_length < filter_length:
        return 0
    return int(np.floor(np.log2(data_length / (filter_length - 1.0))))


# ---------------------------------------------------------------------------
# Periodized transform (exact, non-redundant).
# ---------------------------------------------------------------------------

# The periodized analysis pass is a gather (``signal[idx]``) followed by a
# filter dot product.  The gather index matrices depend only on the wavelet
# and the (even) signal length, so they are memoised here: the per-dimension
# grid transform applies the same-length DWT to every occupied line of the
# grid and would otherwise rebuild the indices once per line.
_PERIODIZED_INDEX_CACHE: dict = {}
_PERIODIZED_INDEX_CACHE_MAX = 64


def _periodized_indices(wavelet: Wavelet, n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cached ``(lo_idx, hi_idx)`` gather matrices for an even length ``n``."""
    # The key captures everything the index matrices depend on, so two banks
    # sharing a name but differing in support (e.g. a hand-built Wavelet)
    # never collide in the cache.
    key = (
        wavelet.name,
        len(wavelet.dec_lo),
        len(wavelet.dec_hi),
        wavelet.dec_lo_offset,
        wavelet.dec_hi_offset,
        n,
    )
    cached = _PERIODIZED_INDEX_CACHE.get(key)
    if cached is not None:
        return cached
    half = n // 2
    even_positions = 2 * np.arange(half)[:, None]
    # a[k] = sum_m dec_lo[m] * x[(2k + m - offset) mod n], the inner product of
    # the signal with the analysis filter shifted by 2k on the circle.
    lo_idx = np.mod(even_positions + np.arange(len(wavelet.dec_lo))[None, :] - wavelet.dec_lo_offset, n)
    hi_idx = np.mod(even_positions + np.arange(len(wavelet.dec_hi))[None, :] - wavelet.dec_hi_offset, n)
    if len(_PERIODIZED_INDEX_CACHE) >= _PERIODIZED_INDEX_CACHE_MAX:
        _PERIODIZED_INDEX_CACHE.pop(next(iter(_PERIODIZED_INDEX_CACHE)))
    _PERIODIZED_INDEX_CACHE[key] = (lo_idx, hi_idx)
    return lo_idx, hi_idx


def _dwt_periodized(signal: np.ndarray, wavelet: Wavelet) -> Tuple[np.ndarray, np.ndarray]:
    n = len(signal)
    if n % 2 == 1:
        # Pad to even length by repeating the final sample; the caller trims
        # back to the original length after synthesis.
        signal = np.concatenate([signal, signal[-1:]])
        n += 1
    lo_idx, hi_idx = _periodized_indices(wavelet, n)
    approx = signal[lo_idx] @ wavelet.dec_lo
    detail = signal[hi_idx] @ wavelet.dec_hi
    return approx, detail


def dwt_batch(signals, wavelet, mode: str = "periodization", approx_only: bool = False):
    """Single-level DWT of many equal-length signals at once.

    Parameters
    ----------
    signals:
        ``(batch, n)`` array; every row is transformed independently.
    wavelet:
        Wavelet name or :class:`Wavelet`.
    mode:
        Only ``"periodization"`` is supported (the non-redundant mode the
        grid transform uses).
    approx_only:
        Skip the detail (high-pass) half entirely and return just ``cA``.
        The grid transform discards the detail coefficients unconditionally
        (Algorithm 3 keeps only the scale space), so computing them would be
        pure waste on that path -- this flag roughly halves the work.

    Returns
    -------
    (cA, cD), or cA alone when ``approx_only``:
        Arrays of shape ``(batch, ceil(n / 2))``, row ``i`` being exactly
        ``dwt(signals[i], wavelet, mode)``.
    """
    if mode != "periodization":
        raise ValueError(f"dwt_batch only supports mode='periodization'; got {mode!r}.")
    signals = np.asarray(signals, dtype=np.float64)
    if signals.ndim != 2:
        raise ValueError(f"signals must be a 2-D (batch, n) array; got shape {signals.shape}.")
    if signals.shape[1] == 0:
        raise ValueError("cannot transform empty signals.")
    bank = build_wavelet(wavelet)
    n = signals.shape[1]
    if n % 2 == 1:
        signals = np.concatenate([signals, signals[:, -1:]], axis=1)
        n += 1
    lo_idx, hi_idx = _periodized_indices(bank, n)
    # The fancy-indexed gather is not C-contiguous (the advanced-index dims
    # are moved), which routes the matmul through a layout-dependent kernel.
    # Copying to contiguous first keeps the numerics layout-independent (so
    # the lifting backend can be pinned bit-for-bit against this path) and
    # lets the stacked matmul use the fast contiguous loop.
    approx = np.ascontiguousarray(signals[:, lo_idx]) @ bank.dec_lo
    if approx_only:
        return approx
    detail = np.ascontiguousarray(signals[:, hi_idx]) @ bank.dec_hi
    return approx, detail


def _idwt_periodized(
    approx: np.ndarray,
    detail: np.ndarray,
    wavelet: Wavelet,
    output_length: Optional[int],
) -> np.ndarray:
    if len(approx) != len(detail):
        raise ValueError(
            f"cA and cD must have equal length in periodization mode; "
            f"got {len(approx)} and {len(detail)}."
        )
    half = len(approx)
    n = 2 * half
    reconstructed = np.zeros(n)
    even_positions = 2 * np.arange(half)

    # x[(2k + m - offset) mod n] += rec_lo[m] * a[k]  (and likewise for cD):
    # superposition of the synthesis filters shifted by 2k on the circle.
    for m, coeff in enumerate(wavelet.rec_lo):
        targets = np.mod(even_positions + m - wavelet.rec_lo_offset, n)
        np.add.at(reconstructed, targets, coeff * approx)
    for m, coeff in enumerate(wavelet.rec_hi):
        targets = np.mod(even_positions + m - wavelet.rec_hi_offset, n)
        np.add.at(reconstructed, targets, coeff * detail)

    if output_length is not None:
        reconstructed = reconstructed[:output_length]
    return reconstructed


# ---------------------------------------------------------------------------
# Padded transforms (zero / symmetric extension).
# ---------------------------------------------------------------------------


def _dwt_padded(signal: np.ndarray, wavelet: Wavelet, mode: str) -> Tuple[np.ndarray, np.ndarray]:
    pad = wavelet.filter_length - 1
    extended = _extend(signal, pad, mode)
    # Correlate (not convolve) with the analysis filters: slide the filter and
    # take inner products, then keep the odd phases.
    approx_full = np.correlate(extended, wavelet.dec_lo, mode="valid")
    detail_full = np.correlate(extended, wavelet.dec_hi, mode="valid")
    return approx_full[1::2], detail_full[1::2]


def _idwt_padded(
    approx: np.ndarray,
    detail: np.ndarray,
    wavelet: Wavelet,
    output_length: Optional[int],
) -> np.ndarray:
    if len(approx) != len(detail):
        raise ValueError(
            f"cA and cD must have equal length; got {len(approx)} and {len(detail)}."
        )
    filter_len = wavelet.filter_length
    upsampled_a = np.zeros(2 * len(approx))
    upsampled_d = np.zeros(2 * len(detail))
    upsampled_a[::2] = approx
    upsampled_d[::2] = detail
    mixed = np.convolve(upsampled_a, wavelet.rec_lo) + np.convolve(upsampled_d, wavelet.rec_hi)
    # Drop the filter transient on each side (standard trim of L - 2 samples).
    trim = filter_len - 2
    if trim > 0 and len(mixed) > 2 * trim:
        mixed = mixed[trim:-trim]
    if output_length is not None:
        mixed = mixed[:output_length]
    return mixed


# ---------------------------------------------------------------------------
# Public API.
# ---------------------------------------------------------------------------


def dwt(data, wavelet, mode: str = "periodization") -> Tuple[np.ndarray, np.ndarray]:
    """Single-level 1-D discrete wavelet transform.

    Parameters
    ----------
    data:
        1-D array-like signal.
    wavelet:
        Wavelet name (e.g. ``"db2"``, ``"bior2.2"``) or :class:`Wavelet`.
    mode:
        Boundary handling; see the module docstring.

    Returns
    -------
    (cA, cD):
        Approximation (scale-space) and detail (wavelet-space) coefficients.
    """
    signal = _as_signal(data)
    bank = build_wavelet(wavelet)
    mode = _check_mode(mode)
    if mode == "periodization":
        return _dwt_periodized(signal, bank)
    return _dwt_padded(signal, bank, mode)


def idwt(
    approx,
    detail,
    wavelet,
    mode: str = "periodization",
    output_length: Optional[int] = None,
) -> np.ndarray:
    """Single-level inverse DWT.

    Either coefficient array may be ``None`` in which case it is treated as a
    zero array of the same length as the other -- this is how low-pass
    smoothing (detail suppression) is expressed.
    """
    bank = build_wavelet(wavelet)
    mode = _check_mode(mode)
    if approx is None and detail is None:
        raise ValueError("at least one of cA / cD must be provided.")
    if approx is None:
        approx = np.zeros_like(np.asarray(detail, dtype=np.float64))
    if detail is None:
        detail = np.zeros_like(np.asarray(approx, dtype=np.float64))
    approx = np.asarray(approx, dtype=np.float64)
    detail = np.asarray(detail, dtype=np.float64)
    if mode == "periodization":
        return _idwt_periodized(approx, detail, bank, output_length)
    return _idwt_padded(approx, detail, bank, output_length)


def wavedec(data, wavelet, level: Optional[int] = None, mode: str = "periodization") -> List[np.ndarray]:
    """Multi-level decomposition ``[cA_L, cD_L, cD_{L-1}, ..., cD_1]``.

    ``level=None`` selects the maximum useful depth for the signal length and
    filter, matching the layered structure of the Mallat algorithm.
    """
    signal = _as_signal(data)
    bank = build_wavelet(wavelet)
    mode = _check_mode(mode)
    if level is None:
        level = max(dwt_max_level(len(signal), bank.filter_length), 1)
    if level < 1:
        raise ValueError(f"level must be >= 1; got {level}.")

    details: List[np.ndarray] = []
    approx = signal
    for _ in range(level):
        if len(approx) < 2:
            break
        approx, detail = dwt(approx, bank, mode=mode)
        details.append(detail)
    coefficients = [approx] + details[::-1]
    return coefficients


def waverec(
    coefficients: Sequence[np.ndarray],
    wavelet,
    mode: str = "periodization",
    output_length: Optional[int] = None,
) -> np.ndarray:
    """Reconstruct a signal from :func:`wavedec` output."""
    if len(coefficients) < 2:
        raise ValueError("waverec needs at least [cA, cD].")
    bank = build_wavelet(wavelet)
    mode = _check_mode(mode)
    approx = np.asarray(coefficients[0], dtype=np.float64)
    for detail in coefficients[1:]:
        detail = np.asarray(detail, dtype=np.float64)
        if len(detail) != len(approx):
            # Levels produced from odd-length intermediates differ by one
            # coefficient; truncate the approximation to match.
            approx = approx[: len(detail)]
        approx = idwt(approx, detail, bank, mode=mode)
    if output_length is not None:
        approx = approx[:output_length]
    return approx


def smooth_signal(data, wavelet, level: int = 1, mode: str = "periodization") -> np.ndarray:
    """Low-pass smooth ``data`` by zeroing all detail coefficients.

    This is the denoising primitive AdaWave applies along every grid
    dimension: decompose to ``level`` scales, discard the wavelet (detail)
    spaces entirely, and reconstruct from the scale space only.  The output
    has the same length as the input.
    """
    signal = _as_signal(data)
    if level < 1:
        raise ValueError(f"level must be >= 1; got {level}.")
    coefficients = wavedec(signal, wavelet, level=level, mode=mode)
    smoothed = [coefficients[0]] + [np.zeros_like(c) for c in coefficients[1:]]
    return waverec(smoothed, wavelet, mode=mode, output_length=len(signal))
