"""Discrete wavelet transform substrate.

AdaWave's second step applies a discrete wavelet transform (DWT) to the
quantized feature space.  Because this reproduction is self-contained, the
transform is implemented here from scratch:

* :mod:`repro.wavelets.filters` -- wavelet filter banks: Haar, Daubechies
  (computed by spectral factorisation), symlets (least-asymmetric root
  selection) and the Cohen-Daubechies-Feauveau biorthogonal spline family,
  including CDF(2,2) which the paper uses.
* :mod:`repro.wavelets.dwt` -- single-level and multi-level 1-D analysis /
  synthesis with periodized, zero-padded and symmetric boundary handling.
* :mod:`repro.wavelets.lifting` -- lifting-scheme implementations of the
  CDF(2,2) (LeGall 5/3) and CDF 9/7 transforms with exact integer-free
  perfect reconstruction.
* :mod:`repro.wavelets.backends` -- pluggable batched approximation-only
  kernels for the grid-transform hot path (numpy reference, batched lifting,
  optional numba), behind a registry with ``"auto"`` resolution.
* :mod:`repro.wavelets.ndwt` -- separable n-dimensional transforms (the 2-D
  LL/LH/HL/HH decomposition of Section III-A.2 and its d-dimensional
  generalisation).
* :mod:`repro.wavelets.thresholding` -- hard / soft / universal coefficient
  thresholding used for denoising.
"""

from repro.wavelets.backends import (
    LiftingBackend,
    NumpyBackend,
    TransformBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.wavelets.filters import Wavelet, available_wavelets, build_wavelet
from repro.wavelets.dwt import (
    dwt,
    dwt_batch,
    idwt,
    wavedec,
    waverec,
    dwt_max_level,
    smooth_signal,
)
from repro.wavelets.ndwt import dwt2, idwt2, dwtn, idwtn, smooth_nd
from repro.wavelets.thresholding import (
    LEVEL_MODES,
    THRESHOLD_POLICY_NAMES,
    THRESHOLD_RULES,
    LevelPolicy,
    hard_threshold,
    level_thresholds,
    mad_sigma,
    soft_threshold,
    threshold_levels,
    universal_threshold,
    percentile_threshold,
    threshold_coefficients,
)

__all__ = [
    "Wavelet",
    "available_wavelets",
    "build_wavelet",
    "TransformBackend",
    "NumpyBackend",
    "LiftingBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "unregister_backend",
    "dwt",
    "dwt_batch",
    "idwt",
    "wavedec",
    "waverec",
    "dwt_max_level",
    "smooth_signal",
    "dwt2",
    "idwt2",
    "dwtn",
    "idwtn",
    "smooth_nd",
    "LEVEL_MODES",
    "THRESHOLD_POLICY_NAMES",
    "THRESHOLD_RULES",
    "LevelPolicy",
    "hard_threshold",
    "level_thresholds",
    "mad_sigma",
    "soft_threshold",
    "threshold_levels",
    "universal_threshold",
    "percentile_threshold",
    "threshold_coefficients",
]
