"""Setuptools shim so ``python setup.py develop`` works in offline environments
where pip's PEP 517 editable build (which needs the ``wheel`` package) is
unavailable.  Configuration lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
