"""E1 benchmark -- Fig. 1 / Fig. 2: the running example comparison.

Paper reference: AdaWave ~0.76 AMI with the five clusters recovered; k-means
~0.25; DBSCAN ~0.28 with 21 clusters; SkinnyDip poor.  The regenerated table
must preserve the ordering "AdaWave clearly ahead of SkinnyDip, and at least
competitive with the best automated baseline", measured on the simulant.
"""

import pytest

pytestmark = pytest.mark.slow


from repro.experiments import format_table, run_running_example


def _regenerate():
    return run_running_example(n_per_cluster=1200, seed=0, dbscan_max_points=12000)


def test_bench_running_example(benchmark):
    result = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    print()
    print(format_table(result))
    scores = {row["algorithm"]: row["ami"] for row in result.rows}
    assert scores["AdaWave"] > 0.6
    assert scores["AdaWave"] > scores["SkinnyDip"]
