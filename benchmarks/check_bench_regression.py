"""Compare a pytest-benchmark JSON run against a stored baseline.

The nightly workflow writes ``artifacts/bench-serve.json`` via
``--benchmark-json`` and then runs::

    python benchmarks/check_bench_regression.py \
        benchmarks/BENCH_serve.json artifacts/bench-serve.json

* When the baseline file does not exist yet, the current run seeds it and
  the check passes (first night).
* Otherwise every benchmark present in **both** files is compared by mean
  wall time; any regression beyond ``--threshold`` (default 20%) is
  reported and the process exits non-zero, failing the job.
* ``--update`` rewrites the baseline with the current run after a passing
  comparison, so the committed file tracks the fleet's drift instead of
  pinning a machine generation forever.

Comparing means across runner hardware is noisy; the 20% bar is wide on
purpose -- it exists to catch the "tier-1 floor bench got 2x slower"
class of regression, not microsecond drift.  New/removed benchmarks never
fail the check (they have nothing to compare against).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

DEFAULT_THRESHOLD = 0.20


def load_benchmarks(path: Path) -> Dict[str, float]:
    """pytest-benchmark JSON -> ``{fullname: mean_seconds}``."""
    document = json.loads(Path(path).read_text())
    out: Dict[str, float] = {}
    for bench in document.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats") or {}
        mean = stats.get("mean")
        if name and isinstance(mean, (int, float)) and mean > 0:
            out[str(name)] = float(mean)
    return out


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[List[str], List[str]]:
    """``(regressions, report_lines)`` for benchmarks present in both runs.

    A benchmark regresses when its current mean exceeds the baseline mean
    by more than ``threshold`` (0.20 = +20%).
    """
    regressions: List[str] = []
    lines: List[str] = []
    for name in sorted(set(baseline) & set(current)):
        before, after = baseline[name], current[name]
        change = (after - before) / before
        marker = " "
        if change > threshold:
            regressions.append(name)
            marker = "!"
        lines.append(
            f"{marker} {name}: {before:.4f}s -> {after:.4f}s ({change:+.1%})"
        )
    for name in sorted(set(current) - set(baseline)):
        lines.append(f"+ {name}: new benchmark ({current[name]:.4f}s), no baseline")
    for name in sorted(set(baseline) - set(current)):
        lines.append(f"- {name}: missing from current run")
    return regressions, lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="stored baseline JSON")
    parser.add_argument("current", type=Path, help="fresh --benchmark-json output")
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="fractional slowdown that fails the check (default 0.20)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline with the current run when the check passes",
    )
    args = parser.parse_args(argv)

    current = load_benchmarks(args.current)
    if not current:
        print(f"no benchmarks found in {args.current}; nothing to check.")
        return 1

    if not args.baseline.exists():
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(Path(args.current).read_text())
        print(f"seeded baseline {args.baseline} from {args.current} "
              f"({len(current)} benchmarks).")
        return 0

    baseline = load_benchmarks(args.baseline)
    regressions, lines = compare(baseline, current, args.threshold)
    print(f"benchmark comparison (threshold +{args.threshold:.0%}):")
    for line in lines:
        print(f"  {line}")
    if regressions:
        print(f"FAILED: {len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.0%}: {', '.join(regressions)}")
        return 1
    if args.update:
        args.baseline.write_text(Path(args.current).read_text())
        print(f"baseline {args.baseline} refreshed.")
    print("benchmark floors OK.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
