"""E9 benchmark -- grid-pyramid auto-tuning overhead and quality.

The fast tier-1 budget guards the tentpole claim: evaluating a 4-scale
dyadic pyramid from one quantization sketch must cost at most 2x a single
fixed-scale fit at n = 100k, d = 2 -- the sweep reuses the sketch, it does
not refit per scale (the naive refit-per-scale alternative is timed in the
same table for contrast and lands near 4x).

The slow-marked deep sweep runs the tuned-vs-fixed AMI comparison across
the synthetic noise suite and prints the full tables (run with
``pytest benchmarks/ -m slow``).
"""

import pytest

from repro.experiments import (
    format_table,
    run_tune_overhead,
    run_tuning_comparison,
    run_widened_sweep_overhead,
)

SWEEP_OVERHEAD_CEILING = 2.0    # 4-scale sweep vs single fixed-scale fit
WIDENED_SWEEP_CEILING = 2.5     # 4-policy threshold sweep vs single fit
TUNED_AMI_FLOOR = 0.95          # tuned noise-aware AMI vs best fixed pow2 scale


def test_bench_tune_sweep_overhead(benchmark):
    """A 4-scale pyramid sweep must cost <= 2x one fixed-scale fit.

    n = 100k, d = 2, base scale 128 with factors (1, 2, 4, 8): the sweep
    quantizes once, derives the coarser grids by exact coarsening and runs
    only the cheap grid-side stages per scale.  If this ratio regresses, the
    sweep has started re-touching the points.
    """
    result = benchmark.pedantic(
        lambda: run_tune_overhead(
            n_points=100_000,
            base_scale=128,
            factors=(1, 2, 4, 8),
            repeats=3,
            include_default_tune=True,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(result))
    sweep_ratio = result.metadata["sweep_ratio"]
    assert sweep_ratio <= SWEEP_OVERHEAD_CEILING, (
        f"a 4-scale pyramid sweep costs {sweep_ratio:.2f}x a single fixed fit; "
        f"the ceiling is {SWEEP_OVERHEAD_CEILING}x -- the sweep must reuse the "
        "quantization sketch rather than refit."
    )
    # Sanity on the contrast row: refitting per scale must cost clearly more
    # than sweeping the same scales from one sketch.
    assert result.metadata["refit_ratio"] > result.metadata["sweep_ratio"]


def test_bench_widened_sweep_overhead(benchmark):
    """Sweeping all four threshold policies must cost <= 2.5x one fit.

    n = 100k, d = 2, fixed scale 128: ``AdaWave(threshold="tune")``
    quantizes once and reruns only the ``O(cells)`` grid-side stages per
    level policy, so the widened axis stays a small multiple of a single
    fixed fit.  A regression here means a policy pass started re-touching
    the points (or re-quantizing per candidate).
    """
    result = benchmark.pedantic(
        lambda: run_widened_sweep_overhead(
            n_points=100_000, base_scale=128, repeats=3
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(result))
    widened_ratio = result.metadata["widened_ratio"]
    assert widened_ratio <= WIDENED_SWEEP_CEILING, (
        f"the 4-policy threshold sweep costs {widened_ratio:.2f}x a single "
        f"fixed fit; the ceiling is {WIDENED_SWEEP_CEILING}x -- the sweep "
        "must reuse the one quantization sketch."
    )


@pytest.mark.slow
def test_bench_tune_quality_deep_sweep(benchmark):
    """Tuned-vs-fixed AMI across the noise suite, plus the overhead table at
    a larger size; asserts the 0.95 quality floor the tier-1 tests pin on
    two noise levels holds across the whole sweep."""
    def _sweep():
        quality = run_tuning_comparison(
            noise_fractions=(0.2, 0.3, 0.5, 0.65, 0.75, 0.9),
            n_per_cluster=5600,
            seed=0,
        )
        overhead = run_tune_overhead(n_points=500_000, repeats=2)
        return quality, overhead

    quality, overhead = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(format_table(quality))
    print()
    print(format_table(overhead))
    assert quality.metadata["min_ratio"] >= TUNED_AMI_FLOOR, (
        f"worst tuned/best-fixed AMI ratio is {quality.metadata['min_ratio']:.3f}; "
        f"the floor is {TUNED_AMI_FLOOR}."
    )
