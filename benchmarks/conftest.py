"""Shared fixtures and reporting hooks for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a reduced
-- but structurally identical -- size so the whole suite completes in
minutes.  Each benchmark prints the regenerated rows, so running

    pytest benchmarks/ --benchmark-only -s

produces a textual version of every artefact alongside the timing data.
Larger, closer-to-paper configurations are available by calling the
functions in :mod:`repro.experiments` directly (see EXPERIMENTS.md).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
