"""E5 benchmark -- Fig. 9: the Roadmap case study.

Paper reference: AdaWave clusters the North Jutland road network with AMI
0.735 and the detected clusters correspond to the densely populated cities.
The benchmark runs the road-network simulant and checks that AdaWave scores
well and recovers the majority of the simulated cities.
"""

import pytest

pytestmark = pytest.mark.slow


from repro.experiments import format_table, run_roadmap_case_study


def _regenerate():
    return run_roadmap_case_study(n_samples=12000, seed=0, dbscan_max_points=8000)


def test_bench_roadmap_case_study(benchmark):
    result = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    print()
    print(format_table(result))
    adawave = next(row for row in result.rows if row["algorithm"] == "AdaWave")
    assert adawave["ami"] > 0.5
    assert adawave["cities_recovered"] >= 4
