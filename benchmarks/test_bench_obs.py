"""Observability benchmarks: the monitoring plane must cost a rounding error.

The continuous monitoring layer (time-series rollups, /proc resource
sampling, SLO evaluation) runs on a daemon cadence next to the serving hot
path.  Its acceptance bar: a monitored service (sysmon on, profiler off --
the production configuration) keeps at least 95% of the unmonitored
service's predict throughput.
"""

from repro.experiments import format_table, run_monitoring_overhead

MONITORING_OVERHEAD_FLOOR = 0.95  # monitored / unmonitored points-per-sec


def test_bench_monitoring_overhead_floor(benchmark):
    """Sysmon-on serving must keep >= 95% of unmonitored throughput.

    Identical concurrent traffic (200k query points in 32 batches) through
    two single-process services, one bare and one sampled every 100ms by a
    :class:`~repro.obs.sysmon.SystemMonitor` with an availability SLO
    attached.  The sampler does a bounded amount of work per tick (series
    rollup, two /proc reads, one burn-rate evaluation), so anything below
    the floor means monitoring has started taxing the serving plane.

    Noise can only *understate* the ratio (a scheduler hiccup during the
    monitored drives looks like overhead; nothing makes monitoring look
    free), so the floor is asserted on the best of up to three attempts.
    """
    result = benchmark.pedantic(
        lambda: run_monitoring_overhead(
            n_train=20_000,
            n_queries=200_000,
            n_requests=32,
            scale=128,
            repeats=7,
        ),
        rounds=1,
        iterations=1,
    )
    relative = 0.0
    for _ in range(3):
        print()
        print(format_table(result))
        assert result.metadata["labels_match"], (
            "the monitored and unmonitored services disagreed with the frozen model"
        )
        assert result.metadata["monitor_samples"] > 0, (
            "the monitor never sampled during the drive; the comparison is vacuous"
        )
        assert result.metadata["monitor_errors"] == 0, (
            "the monitor's sampling passes errored during the drive"
        )
        assert "proc.parent.rss_bytes" in result.metadata["series_recorded"], (
            "resource accounting never landed in the series store"
        )
        relative = max(
            relative,
            next(
                row["relative"]
                for row in result.rows
                if row["configuration"] == "monitored"
            ),
        )
        if relative >= MONITORING_OVERHEAD_FLOOR:
            break
        result = run_monitoring_overhead(
            n_train=20_000, n_queries=200_000, n_requests=32, scale=128, repeats=7
        )
    assert relative >= MONITORING_OVERHEAD_FLOOR, (
        f"monitoring dropped predict throughput to {relative:.3f}x the bare "
        f"service at n=200k; the acceptance floor is {MONITORING_OVERHEAD_FLOOR}x."
    )
