"""E6 benchmark -- Fig. 10: runtime versus the number of objects.

Paper reference: AdaWave's runtime grows linearly with n (it is grid based
and never computes pairwise distances) and ranks second behind SkinnyDip,
well ahead of the distance-based methods.  Absolute seconds are machine and
implementation dependent (the paper compares Python, R and Java programs and
itself only discusses asymptotic trends), so the assertions target the fitted
growth exponent and the relative ordering at the largest size.
"""

import pytest

from repro.experiments import (
    format_table,
    run_backend_speedup,
    run_engine_speedup,
    run_runtime_comparison,
)


def _regenerate():
    return run_runtime_comparison(
        sizes=(2000, 4000, 8000),
        noise_fraction=0.75,
        seed=0,
        max_points_quadratic=8000,
    )


def test_bench_engine_speedup(benchmark):
    """The vectorized engine must beat the seed dict path by >= 3x at scale.

    n = 100k points, d = 2, scale = 128 -- the acceptance configuration.  The
    two engines are algorithmically identical (the golden-regression tests
    assert exact agreement), so the ratio measures pure data-structure /
    vectorization gains.  Not marked slow: both engines together run in a few
    seconds, and this is the regression guard for the hot path.
    """
    result = benchmark.pedantic(
        lambda: run_engine_speedup(n_points=100_000, scale=128, repeats=2),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(result))
    assert result.metadata["labels_identical"]
    speedup = next(
        row["seconds"] for row in result.rows if row["engine"].startswith("speedup")
    )
    assert speedup >= 3.0, (
        f"vectorized engine is only {speedup:.2f}x faster than the reference "
        "dict path; the acceptance bar is 3x."
    )


def test_bench_backend_speedup(benchmark):
    """The lifting backend must beat the full ``dwt_batch`` by >= 1.5x.

    Same acceptance configuration as the engine bench (n = 100k, d = 2,
    scale = 128, bior2.2): the real line matrix that fit would transform is
    timed through every registered backend against the two-sided convolution
    it replaces.  The lifting factorisation computes only the approximation
    half with fewer multiplies, so the measured margin is ~3x; 1.5x is the
    floor.  Labels must stay identical to the numpy reference end to end.
    Not marked slow: the whole comparison runs in a couple of seconds.
    """
    result = benchmark.pedantic(
        lambda: run_backend_speedup(n_points=100_000, scale=128, repeats=10),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(result))
    assert all(result.metadata["labels_identical"].values()), (
        f"backend labels diverged from numpy: {result.metadata['labels_identical']}"
    )
    speedup = next(
        row["seconds"]
        for row in result.rows
        if row["backend"] == "lifting" and row["stage"] == "speedup vs dwt_batch"
    )
    assert speedup >= 1.5, (
        f"lifting backend is only {speedup:.2f}x faster than the full "
        "dwt_batch transform; the acceptance bar is 1.5x."
    )


@pytest.mark.slow
def test_bench_runtime_scaling(benchmark):
    result = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    print()
    print(format_table(result))

    growth = {
        row["algorithm"].replace(" (growth exponent)", ""): row["seconds"]
        for row in result.rows
        if "growth" in row["algorithm"]
    }
    # AdaWave grows (sub-)linearly: exponent clearly below quadratic.
    assert growth["AdaWave"] < 1.5

    largest = max(row["n"] for row in result.rows if row["n"] is not None)
    at_largest = {
        row["algorithm"]: row["seconds"]
        for row in result.rows
        if row["n"] == largest
    }
    # AdaWave is far faster than the EM / DBSCAN implementations at scale.
    assert at_largest["AdaWave"] < at_largest["EM"]
    assert at_largest["AdaWave"] < at_largest["DBSCAN"]
