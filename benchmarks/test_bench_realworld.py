"""E3 benchmark -- Table I: eight algorithms on the nine UCI simulants.

Paper reference: AdaWave achieves the best average AMI (~0.60) and the top
score on six of the nine datasets; SkinnyDip / k-means / STSC average around
0.49; RIC performs worst.  On the simulants the benchmark asserts the
headline claim only: AdaWave's average is at least on par with every
baseline's average.
"""

import pytest

pytestmark = pytest.mark.slow


import numpy as np

from repro.experiments import format_table, run_realworld_comparison
from repro.experiments.reporting import pivot

_DATASETS = ("seeds", "iris", "glass", "motor", "wholesale", "dermatology")


def _regenerate():
    return run_realworld_comparison(
        dataset_names=_DATASETS,
        seed=0,
        quadratic_cap=1500,
    )


def test_bench_realworld_table(benchmark):
    result = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    wide = pivot(result, index="algorithm", column="dataset", value="ami")
    print()
    print(format_table(wide, title="Table I (simulants): AMI per dataset"))

    averages = {
        row["algorithm"]: row["ami"] for row in result.rows if row["dataset"] == "AVG"
    }
    # On the Gaussian-mixture simulants the centroid / model based baselines
    # are structurally advantaged compared to the paper's real datasets (see
    # EXPERIMENTS.md); the assertions therefore target sanity of the
    # regenerated table rather than the paper's exact ranking.
    assert averages["AdaWave"] > 0.25
    assert averages["RIC"] <= max(averages.values())
    # Every algorithm produced a full row.
    assert len(result.rows) == (len(_DATASETS) + 1) * 8
    assert all(np.isfinite(row["ami"]) for row in result.rows)
