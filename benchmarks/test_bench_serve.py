"""E8 benchmark -- serving layer: predict throughput and parallel ingestion.

Fast tier-1 budgets (not marked slow) guard the two serving hot paths:

* the frozen :class:`~repro.serve.ClusterModel` lookup must label at least
  half a million points per second (it measures 5M+/s on commodity
  hardware, so only an order-of-magnitude regression trips this);
* sharded parallel ingestion must beat serial ingestion by >= 1.5x at
  n = 200k with two workers.  The speedup assertion requires >= 2 physical
  CPUs -- on a single-core host the measurement is meaningless and the test
  skips with an explicit message rather than passing vacuously.

The slow-marked deep sweep scales both workloads up and prints the full
tables (run with ``pytest benchmarks/ -m slow``).
"""

import os
import tempfile
from pathlib import Path

import pytest

from repro.experiments import format_table, run_parallel_ingest, run_predict_throughput

PREDICT_THROUGHPUT_FLOOR = 500_000  # points / second
PARALLEL_SPEEDUP_FLOOR = 1.5


def test_bench_predict_throughput(benchmark):
    """Frozen-model predict must stay a pure vectorized lookup.

    The artifact is round-tripped through save/load inside the run, so this
    also guards the deserialization path, and the metadata assertion pins
    serving-vs-training label equality.
    """
    with tempfile.TemporaryDirectory() as tmp:
        result = benchmark.pedantic(
            lambda: run_predict_throughput(
                n_train=50_000,
                n_queries=200_000,
                scale=128,
                repeats=3,
                save_path=Path(tmp) / "model.npz",
            ),
            rounds=1,
            iterations=1,
        )
    print()
    print(format_table(result))
    assert result.metadata["labels_match"], (
        "the frozen ClusterModel does not reproduce the one-shot fit labels"
    )
    throughput = next(
        row["points_per_sec"] for row in result.rows if row["stage"] == "predict"
    )
    assert throughput >= PREDICT_THROUGHPUT_FLOOR, (
        f"frozen-model predict ran at {throughput:,.0f} points/s; the floor is "
        f"{PREDICT_THROUGHPUT_FLOOR:,} -- the lookup path has regressed."
    )


def test_bench_parallel_ingest_speedup(benchmark):
    """Sharded 2-worker ingestion must beat serial by >= 1.5x at n = 200k."""
    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            "parallel-vs-serial ingestion speedup needs >= 2 CPUs; "
            f"this host reports {os.cpu_count()}."
        )
    result = benchmark.pedantic(
        lambda: run_parallel_ingest(
            n_points=200_000, n_batches=32, workers=(1, 2), scale=128, repeats=3
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(result))
    assert result.metadata["labels_identical"], (
        "parallel ingestion produced different labels than serial ingestion; "
        "grid merging must be exact."
    )
    speedup = next(
        row["speedup"] for row in result.rows if row["workers"] == 2
    )
    assert speedup >= PARALLEL_SPEEDUP_FLOOR, (
        f"2-worker sharded ingestion is only {speedup:.2f}x faster than serial "
        f"at n=200k; the acceptance bar is {PARALLEL_SPEEDUP_FLOOR}x."
    )


@pytest.mark.slow
def test_bench_serve_deep_sweep(benchmark):
    """Larger serving sweep: 500k-point ingestion across worker counts and
    a 1M-query predict pass, printed as tables."""
    def _sweep():
        ingest = run_parallel_ingest(
            n_points=500_000,
            n_batches=64,
            workers=(1, 2, 4),
            scale=128,
            repeats=2,
        )
        predict = run_predict_throughput(
            n_train=200_000, n_queries=1_000_000, scale=128, repeats=2
        )
        return ingest, predict

    ingest, predict = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(format_table(ingest))
    print()
    print(format_table(predict))
    assert ingest.metadata["labels_identical"]
    assert predict.metadata["labels_match"]
