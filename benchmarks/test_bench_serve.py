"""E8 benchmark -- serving layer: predict throughput and parallel ingestion.

Fast tier-1 budgets (not marked slow) guard the two serving hot paths:

* the frozen :class:`~repro.serve.ClusterModel` lookup must label at least
  half a million points per second (it measures 5M+/s on commodity
  hardware, so only an order-of-magnitude regression trips this);
* sharded parallel ingestion must beat serial ingestion by >= 1.5x at
  n = 200k with two workers.  The speedup assertion requires >= 2 physical
  CPUs -- on a single-core host the measurement is meaningless and the test
  skips with an explicit message rather than passing vacuously;
* the multi-process pool must beat the single-process service by >= 1.5x,
  and its shared-memory data plane must beat the pickle-queue path by
  >= 1.3x, under the same >= 2 CPU proviso.

The slow-marked deep sweep scales both workloads up and prints the full
tables (run with ``pytest benchmarks/ -m slow``).
"""

import os
import tempfile
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import (
    format_table,
    run_parallel_ingest,
    run_predict_throughput,
    run_procpool_throughput,
    run_shm_throughput,
    run_tracing_overhead,
)

PREDICT_THROUGHPUT_FLOOR = 500_000  # points / second
PARALLEL_SPEEDUP_FLOOR = 1.5
PROCPOOL_SPEEDUP_FLOOR = 1.5
SHM_SPEEDUP_FLOOR = 1.3
TRACING_OVERHEAD_FLOOR = 0.95  # traced / untraced points-per-sec


def test_bench_predict_throughput(benchmark):
    """Frozen-model predict must stay a pure vectorized lookup.

    The artifact is round-tripped through save/load inside the run, so this
    also guards the deserialization path, and the metadata assertion pins
    serving-vs-training label equality.
    """
    with tempfile.TemporaryDirectory() as tmp:
        result = benchmark.pedantic(
            lambda: run_predict_throughput(
                n_train=50_000,
                n_queries=200_000,
                scale=128,
                repeats=3,
                save_path=Path(tmp) / "model.npz",
            ),
            rounds=1,
            iterations=1,
        )
    print()
    print(format_table(result))
    assert result.metadata["labels_match"], (
        "the frozen ClusterModel does not reproduce the one-shot fit labels"
    )
    throughput = next(
        row["points_per_sec"] for row in result.rows if row["stage"] == "predict"
    )
    assert throughput >= PREDICT_THROUGHPUT_FLOOR, (
        f"frozen-model predict ran at {throughput:,.0f} points/s; the floor is "
        f"{PREDICT_THROUGHPUT_FLOOR:,} -- the lookup path has regressed."
    )


def test_bench_parallel_ingest_speedup(benchmark):
    """Sharded 2-worker ingestion must beat serial by >= 1.5x at n = 200k."""
    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            "parallel-vs-serial ingestion speedup needs >= 2 CPUs; "
            f"this host reports {os.cpu_count()}."
        )
    result = benchmark.pedantic(
        lambda: run_parallel_ingest(
            n_points=200_000, n_batches=32, workers=(1, 2), scale=128, repeats=3
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(result))
    assert result.metadata["labels_identical"], (
        "parallel ingestion produced different labels than serial ingestion; "
        "grid merging must be exact."
    )
    speedup = next(
        row["speedup"] for row in result.rows if row["workers"] == 2
    )
    assert speedup >= PARALLEL_SPEEDUP_FLOOR, (
        f"2-worker sharded ingestion is only {speedup:.2f}x faster than serial "
        f"at n=200k; the acceptance bar is {PARALLEL_SPEEDUP_FLOOR}x."
    )


def test_bench_procpool_throughput_floor(benchmark):
    """2 worker processes must beat the single-process service by >= 1.5x.

    The single-process ClusteringService serializes each model's traffic
    through one micro-batch leader, so its aggregate throughput tops out at
    one core; the process pool runs batches genuinely concurrently against
    the shared mmap'd artifact.  On a single-core host the comparison is
    meaningless, so the test skips with an explicit message.
    """
    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            "procpool-vs-single-process throughput needs >= 2 CPUs; "
            f"this host reports {os.cpu_count()}."
        )
    with tempfile.TemporaryDirectory() as tmp:
        result = benchmark.pedantic(
            lambda: run_procpool_throughput(
                n_train=20_000,
                n_queries=200_000,
                n_requests=64,
                n_workers=2,
                n_threads=4,
                scale=128,
                repeats=3,
                store_dir=tmp,
            ),
            rounds=1,
            iterations=1,
        )
    print()
    print(format_table(result))
    assert result.metadata["labels_match"], (
        "the process pool served labels that differ from the frozen model"
    )
    assert result.metadata["workers_alive"], "a worker process died under load"
    speedup = next(
        row["speedup"] for row in result.rows if row["configuration"] != "single-process"
    )
    assert speedup >= PROCPOOL_SPEEDUP_FLOOR, (
        f"2-worker procpool served only {speedup:.2f}x the single-process "
        f"throughput at n=200k; the acceptance bar is {PROCPOOL_SPEEDUP_FLOOR}x."
    )


def test_bench_shm_vs_queue_throughput(benchmark):
    """The shared-memory data plane must beat the pickle queues by >= 1.3x.

    Identical pooled traffic (200k query points in 64 concurrent batches)
    through two process pools: one shipping batches over the per-worker
    shared-memory slab rings, one forced onto the pickle-queue path.  The
    rings remove two pickle passes and a pipe copy per batch, so anything
    under the floor means the zero-copy path has regressed into copying.
    On a single-core host the concurrent measurement is meaningless, so the
    test skips with an explicit message.
    """
    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            "shm-vs-queue throughput needs >= 2 CPUs; "
            f"this host reports {os.cpu_count()}."
        )
    with tempfile.TemporaryDirectory() as tmp:
        result = benchmark.pedantic(
            lambda: run_shm_throughput(
                n_train=20_000,
                n_queries=200_000,
                n_requests=64,
                n_workers=2,
                n_threads=4,
                scale=128,
                repeats=3,
                store_dir=tmp,
            ),
            rounds=1,
            iterations=1,
        )
    print()
    print(format_table(result))
    assert result.metadata["labels_match"], (
        "the shm and pickle-queue paths disagreed with the frozen model"
    )
    assert result.metadata["shm_sends"] > 0, (
        "the shm configuration never used the ring; the comparison is vacuous"
    )
    speedup = next(
        row["speedup"] for row in result.rows if row["configuration"] == "shm-ring"
    )
    assert speedup >= SHM_SPEEDUP_FLOOR, (
        f"the shared-memory data plane served only {speedup:.2f}x the "
        f"pickle-queue throughput at n=200k; the acceptance bar is "
        f"{SHM_SPEEDUP_FLOOR}x."
    )


def test_bench_overload_admission(benchmark):
    """A saturated pool sheds load explicitly: Overloaded, never silent drops.

    ``max_pending`` requests are parked behind a deliberately slowed
    dispatcher, a burst of further submissions must raise ``Overloaded``,
    and at the end every admitted request has resolved with exact labels,
    every rejection was an explicit exception, and every worker process is
    still alive -- requests can never vanish.
    """
    from repro.core.adawave import AdaWave
    from repro.serve import Overloaded, ProcessPoolService

    rng = np.random.default_rng(11)
    blob = np.clip(rng.normal(0.4, 0.05, size=(2000, 2)), 0.0, 1.0)
    X = np.vstack([blob, rng.uniform(size=(3000, 2))])
    frozen = AdaWave(scale=64, bounds=([0, 0], [1, 1])).fit(X).export_model()
    queries = rng.uniform(size=(2000, 2))
    expected = frozen.predict(queries)
    max_pending = 4

    def _saturate():
        with tempfile.TemporaryDirectory() as tmp, ProcessPoolService(
            tmp,
            n_workers=min(2, os.cpu_count() or 1),
            max_pending=max_pending,
            # Hold the dispatcher back so the first admissions stay pending
            # long enough for the burst to hit a deterministically full queue
            # (the delay applies while the coalesced batch is not yet full).
            max_batch_delay=0.25,
            max_batch_requests=max_pending + 1,
        ) as service:
            service.register("live", frozen)
            admitted = [service.submit("live", queries) for _ in range(max_pending)]
            outcomes = {"overloaded": 0, "admitted": len(admitted)}
            errors = []

            def burst():
                try:
                    admitted.append(service.submit("live", queries))
                    outcomes["admitted"] += 1
                except Overloaded:
                    outcomes["overloaded"] += 1
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)

            threads = [threading.Thread(target=burst) for _ in range(16)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            labels = [future.result(timeout=30.0) for future in admitted]
            alive = service.pool.alive()
            snapshot = service.telemetry.snapshot()
        return outcomes, errors, labels, alive, snapshot

    outcomes, errors, labels, alive, snapshot = benchmark.pedantic(
        _saturate, rounds=1, iterations=1
    )
    assert errors == []
    assert outcomes["overloaded"] > 0, (
        "the saturated service never rejected: admission control is not biting"
    )
    # Zero silent drops: every submission either resolved exactly or raised.
    assert outcomes["admitted"] + outcomes["overloaded"] == max_pending + 16
    assert len(labels) == outcomes["admitted"]
    for served in labels:
        np.testing.assert_array_equal(served, expected)
    assert all(alive), "a worker process crashed during the overload burst"
    assert snapshot["rejections"]["total"] == outcomes["overloaded"]
    assert snapshot["queue"]["max_depth"] <= max_pending


@pytest.mark.slow
def test_bench_serve_deep_sweep(benchmark):
    """Larger serving sweep: 500k-point ingestion across worker counts and
    a 1M-query predict pass, printed as tables."""
    def _sweep():
        ingest = run_parallel_ingest(
            n_points=500_000,
            n_batches=64,
            workers=(1, 2, 4),
            scale=128,
            repeats=2,
        )
        predict = run_predict_throughput(
            n_train=200_000, n_queries=1_000_000, scale=128, repeats=2
        )
        return ingest, predict

    ingest, predict = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(format_table(ingest))
    print()
    print(format_table(predict))
    assert ingest.metadata["labels_identical"]
    assert predict.metadata["labels_match"]


def test_bench_tracing_overhead_floor(benchmark):
    """Per-request tracing must cost <= 5% of in-process predict throughput.

    Identical concurrent traffic (200k query points in 32 batches) through
    two single-process services, one with ``tracing=False`` and one with the
    default tracing on.  Tracing stamps a handful of monotonic instants and
    pushes one bounded-histogram update per request, so anything below the
    floor means observability has started taxing the serving hot path.

    Noise can only *understate* the ratio (a scheduler hiccup during the
    traced drives looks like overhead; nothing makes tracing look free), so
    the floor is asserted on the best of up to three measurement attempts.
    """
    result = benchmark.pedantic(
        lambda: run_tracing_overhead(
            n_train=20_000,
            n_queries=200_000,
            n_requests=32,
            scale=128,
            repeats=7,
        ),
        rounds=1,
        iterations=1,
    )
    relative = 0.0
    for _ in range(3):
        print()
        print(format_table(result))
        assert result.metadata["labels_match"], (
            "the traced and untraced services disagreed with the frozen model"
        )
        assert result.metadata["traced_requests"] > 0, (
            "the traced configuration recorded no traces; the comparison is vacuous"
        )
        relative = max(
            relative,
            next(
                row["relative"]
                for row in result.rows
                if row["configuration"] == "traced"
            ),
        )
        if relative >= TRACING_OVERHEAD_FLOOR:
            break
        result = run_tracing_overhead(
            n_train=20_000, n_queries=200_000, n_requests=32, scale=128, repeats=7
        )
    assert relative >= TRACING_OVERHEAD_FLOOR, (
        f"tracing dropped predict throughput to {relative:.3f}x the untraced "
        f"service at n=200k; the acceptance floor is {TRACING_OVERHEAD_FLOOR}x."
    )
