"""E10 benchmark -- online control plane: re-tune cost and drift recovery.

The fast tier-1 budget guards the control plane's core economics: an
incremental re-tune (grid-pyramid sweep straight off the live sketch, model
freeze, blue/green registry swap) must cost at most 2x a single fixed-scale
fit at n = 100k -- the sketch already holds the quantization, so a re-tune
that re-touches the points has regressed.  (It measures well under 1x; the
2x ceiling is the acceptance bar.)

The slow-marked deep sweep runs the full drift-recovery scenario at a larger
size and prints the drift-check table (run with ``pytest benchmarks/ -m
slow``).
"""

import pytest

from repro.experiments import format_table, run_drift_recovery, run_retune_cost

RETUNE_COST_CEILING = 2.0   # incremental re-tune vs one fixed-scale fit
RECOVERY_AMI_FLOOR = 0.95   # served AMI vs from-scratch AdaWave(scale="tune")


def test_bench_stream_retune_cost(benchmark):
    """An incremental re-tune must cost <= 2x one fixed fit at n = 100k.

    The fixed fit re-quantizes the points every time; the re-tune runs the
    dyadic sweep over the already-quantized live sketch, freezes the winner
    and swaps it into the registry.  A drift check is timed in the same
    table -- it is the per-few-batches steady-state cost.
    """
    result = benchmark.pedantic(
        lambda: run_retune_cost(n_points=100_000, base_scale=128, repeats=3),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(result))
    retune_ratio = result.metadata["retune_ratio"]
    assert retune_ratio <= RETUNE_COST_CEILING, (
        f"an incremental re-tune costs {retune_ratio:.2f}x a single fixed fit; "
        f"the ceiling is {RETUNE_COST_CEILING}x -- the re-tune must run off the "
        "live sketch, not re-touch the points."
    )
    # The steady-state drift check must stay cheaper than the re-tune it
    # decides about.
    assert result.metadata["check_ratio"] < retune_ratio


@pytest.mark.slow
def test_bench_stream_drift_deep_sweep(benchmark):
    """Full drift scenario at a larger size: detection, re-tunes and hot
    swaps under reader load, with the recovery-quality floor asserted."""
    result = benchmark.pedantic(
        lambda: run_drift_recovery(
            n_per_cluster=2400, n_batches=12, check_every=2, window=12, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(result))
    assert result.metadata["failed_predicts"] == 0
    assert result.metadata["retunes_in_phase_b"] >= 1
    assert result.metadata["recovery_ratio"] >= RECOVERY_AMI_FLOOR, (
        f"served AMI {result.metadata['ami_served']:.3f} is below "
        f"{RECOVERY_AMI_FLOOR}x the from-scratch tuned AMI "
        f"{result.metadata['ami_scratch']:.3f}."
    )
