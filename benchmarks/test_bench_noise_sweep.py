"""E2 benchmark -- Fig. 7 / Fig. 8: AMI as the noise percentage grows.

Paper reference: AdaWave dominates every baseline at every noise level and
still reaches ~0.55 AMI at 90 % noise; DBSCAN is competitive only at 20 %
noise and collapses above ~60 %; EM / k-means / WaveCluster / SkinnyDip stay
well below AdaWave throughout.

The benchmark runs a reduced configuration (three noise levels, 1200 objects
per cluster) whose curves have the same shape.
"""

import pytest

pytestmark = pytest.mark.slow


from repro.experiments import format_table, run_noise_sweep
from repro.experiments.reporting import pivot


def _regenerate():
    return run_noise_sweep(
        noise_levels=(0.2, 0.5, 0.8),
        n_per_cluster=800,
        seed=0,
        subsample_quadratic=10000,
    )


def test_bench_noise_sweep(benchmark):
    result = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    wide = pivot(result, index="noise", column="algorithm", value="ami")
    print()
    print(format_table(wide, title="AMI by noise level (Fig. 8)"))

    by_key = {(row["noise"], row["algorithm"]): row["ami"] for row in result.rows}
    # AdaWave dominates WaveCluster, EM and SkinnyDip at every noise level.
    for noise in (0.2, 0.5, 0.8):
        for baseline in ("WaveCluster", "EM", "SkinnyDip"):
            assert by_key[(noise, "AdaWave")] >= by_key[(noise, baseline)] - 0.05
    # AdaWave stays strong at 80 % noise while DBSCAN has collapsed.
    assert by_key[(0.8, "AdaWave")] > 0.6
    assert by_key[(0.8, "AdaWave")] > by_key[(0.8, "DBSCAN")]
