"""E7 benchmark -- ablations of AdaWave's design choices.

Three design claims from the paper are quantified:

* the adaptive threshold is what makes the method robust at high noise
  (versus no threshold filtering, i.e. plain WaveCluster-style smoothing);
* the sparse "grid labeling" store shrinks memory by orders of magnitude as
  the dimension grows;
* the method is not overly sensitive to the wavelet basis (flexibility of
  choosing the basis).
"""

import pytest

pytestmark = pytest.mark.slow


from repro.experiments import (
    format_table,
    run_memory_ablation,
    run_threshold_ablation,
    run_wavelet_ablation,
)


def test_bench_threshold_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: run_threshold_ablation(noise_levels=(0.5, 0.8), n_per_cluster=1200),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(result))
    rows = {(row["noise"], row["threshold_method"]): row["ami"] for row in result.rows}
    # The adaptive threshold beats no thresholding at high noise.
    assert rows[(0.8, "auto")] > rows[(0.8, "none")]


def test_bench_memory_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: run_memory_ablation(dimensions=(2, 4, 6, 8, 10), n_samples=4000, scale=16),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(result))
    savings = result.column("savings_factor")
    assert savings[-1] > 1000 * savings[0]


def test_bench_wavelet_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: run_wavelet_ablation(
            wavelets=("bior2.2", "haar", "db2", "db4", "sym4"),
            noise_fraction=0.75,
            n_per_cluster=1200,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(result))
    scores = result.column("ami")
    # Every basis clusters the data; the spread between bases stays moderate.
    assert min(scores) > 0.4
    assert max(scores) - min(scores) < 0.4
