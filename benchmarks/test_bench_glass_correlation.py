"""E4 benchmark -- Table II: per-attribute correlation with the class (Glass).

Paper reference values (Table II): RI -0.164, Na 0.503, Mg -0.745, Al 0.599,
Si 0.152, K -0.010, Ca 0.001, Ba 0.575, Fe -0.188.  The Glass simulant is
constructed to match them; the benchmark regenerates the measured
correlations and checks every attribute is within 0.2 of the paper's value.
"""

import pytest

pytestmark = pytest.mark.slow


from repro.experiments import format_table, run_glass_correlation


def _regenerate():
    return run_glass_correlation(seed=0)


def test_bench_glass_correlation(benchmark):
    result = benchmark.pedantic(_regenerate, rounds=3, iterations=1)
    print()
    print(format_table(result))
    assert len(result.rows) == 9
    assert max(result.column("absolute_error")) < 0.2
